"""Figure 9: deployment cost relative to Raft-R, F=1, AWS and GCP.

"Costs of deploying Sift relative to the cost of Raft-R in AWS and GCP.
Machines provisioned for equal performance with F=1."  100 groups, a
2-CPU-node shared backup pool (the size Figure 8's simulation
justifies).

Paper numbers: plain Sift marginally *more* expensive; erasure codes +
shared backups reach ~35% savings.
"""

import pytest

from repro.bench.report import bar_table
from repro.cluster import relative_costs


def test_fig9(once):
    costs = once(lambda: {p: relative_costs(p, 1) for p in ("aws", "gcp")})
    labels = list(costs["aws"].keys())
    print()
    print(
        bar_table(
            "Figure 9: cost relative to Raft-R (%), F=1, 100 groups",
            labels,
            {provider: [costs[provider][label] for label in labels] for provider in costs},
            unit="% vs Raft-R",
        )
    )

    for provider in ("aws", "gcp"):
        c = costs[provider]
        # "a single Sift and Sift EC group requires marginally higher
        # costs than a Raft-R group" (AWS; GCP's memory price makes EC
        # break even).
        assert 0 < c["sift"] < 20
        assert -5 < c["sift-ec"] < 20
        # "once we introduce shared backup nodes and erasure codes, we
        # see a cost reduction of up to 35%".
        assert c["sift + shared backups"] < 0
        assert c["sift-ec + shared backups"] == pytest.approx(-35.0, abs=1.0)
        # Orderings within the figure.
        assert c["sift-ec + shared backups"] < c["sift + shared backups"] < c["sift"]
        assert c["sift-ec"] < c["sift"]
