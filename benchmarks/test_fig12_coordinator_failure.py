"""Figure 12: throughput timeline through a coordinator failure (§6.5).

"A coordinator failure causes the system to pause processing client
requests until the system has been brought to a consistent state."
Recovery = heartbeat detection (~21 ms at 7 ms reads x 3 misses), then
replicated-memory log recovery, then loading the KV index table and
bitmap and replaying the KV log — the last phase dominating, exactly as
in the paper.  The cache fills during replay, so the store resumes warm
and with a burst (drained client queues).
"""

import pytest

from repro.bench import run_timeline, sift_spec
from repro.bench.calibration import BenchScale
from repro.bench.report import series_table, sparkline
from repro.chaos import FaultSchedule
from repro.sim.units import MS, SEC
from repro.workloads import WORKLOADS

KILL_AT = 0.6 * SEC
DURATION = 4.0 * SEC
CLIENTS = 10


@pytest.fixture(scope="module")
def timeline():
    scale = BenchScale()
    spec = sift_spec(cores=12, scale=scale)
    marks = {}

    def watch_takeover(group):
        marks["killed"] = group.fabric.sim.now

        def watch():
            sim = group.fabric.sim
            while group.serving_coordinator() is None:
                yield sim.timeout(5 * MS)
            marks["serving"] = sim.now
            coordinator = group.serving_coordinator()
            marks["replayed"] = coordinator.app.stats["replayed"]

        group.fabric.sim.spawn(watch(), name="watch-takeover")

    schedule = (
        FaultSchedule()
        .crash_leader(KILL_AT)
        .probe(KILL_AT, watch_takeover, "watch takeover")
    )
    result = run_timeline(
        spec,
        WORKLOADS["read-heavy"],
        CLIENTS,
        DURATION,
        events=schedule,
        scale=scale,
    )
    return result, marks


def test_fig12(timeline, once):
    result, marks = once(lambda: timeline)
    values = [ops for _t, ops in result.series]
    print()
    print(
        series_table(
            "Figure 12: read-heavy throughput during a coordinator failure",
            "seconds",
            "ops/sec",
            {"sift": result.series},
        )
    )
    print("timeline:", sparkline(values))
    gap_s = (marks["serving"] - marks["killed"]) / 1e6
    print(
        f"takeover after {gap_s * 1000:.0f} ms "
        f"(KV records replayed: {marks.get('replayed')})"
    )

    assert "serving" in marks, "no successor coordinator took over"

    pre = [ops for t, ops in result.series if 0.2 <= t < KILL_AT / 1e6]
    pre_mean = sum(pre) / len(pre)
    # Rebase the absolute marks into the series' time frame.
    serving_s = (marks["serving"] - result.base_us) / 1e6

    # The pause: windows between the kill and the takeover are (near)
    # zero — the group cannot serve without a coordinator.
    paused = [
        ops
        for t, ops in result.series
        if KILL_AT / 1e6 + 0.1 <= t < serving_s - 0.1
    ]
    if paused:
        assert max(paused) < 0.2 * pre_mean, "requests served with no coordinator?"

    # Detection (~21 ms) is a small part of the gap; structure recovery
    # dominates, as in the paper's 21 ms vs ~6 s breakdown.
    detection_budget_s = 0.050
    assert gap_s > detection_budget_s

    # Service resumes and returns to the pre-failure level.
    post = [ops for t, ops in result.series if t >= serving_s + 0.5]
    assert post, "no post-recovery windows"
    post_mean = sum(post) / len(post)
    assert post_mean > 0.85 * pre_mean, (pre_mean, post_mean)


MEM_KILL_AT = 0.6 * SEC
MEM_RESTART_AT = 0.9 * SEC
FAILOVER_DURATION = 4.5 * SEC


@pytest.fixture(scope="module")
def failover_mid_recovery():
    """Coordinator failover while a partitioned memory-node recovery is
    mid-copy: the successor re-fences the push channels, re-runs log
    recovery, and restarts the node recovery from scratch."""
    scale = BenchScale()
    spec = sift_spec(cores=12, scale=scale, recovery_partitions=4)
    marks = {}

    def arm(group):
        def watch():
            sim = group.fabric.sim
            coordinator = group.serving_coordinator()
            # Wait for the copy-back to actually start, then depose the
            # coordinator driving it.
            while coordinator.repmem.states[2] != "recovering":
                yield sim.timeout(1 * MS)
            marks["deposed"] = sim.now
            group.crash_coordinator()
            while True:
                serving = group.serving_coordinator()
                if serving is not None and serving.repmem.states.get(2) == "live":
                    manager = serving.recovery_manager
                    if manager is not None and 2 in manager.copy_stats:
                        marks["copy"] = dict(manager.copy_stats[2])
                    break
                yield sim.timeout(5 * MS)
            marks["recovered"] = sim.now

        group.fabric.sim.spawn(watch(), name="arm-failover")

    schedule = (
        FaultSchedule()
        .crash_memory_node(MEM_KILL_AT, 2)
        .restart_memory_node(MEM_RESTART_AT, 2)
        .probe(MEM_RESTART_AT, arm, "arm failover mid-recovery")
    )
    result = run_timeline(
        spec,
        WORKLOADS["read-heavy"],
        CLIENTS,
        FAILOVER_DURATION,
        events=schedule,
        scale=scale,
    )
    return result, marks


def test_fig12_failover_during_partitioned_recovery(failover_mid_recovery, once):
    result, marks = once(lambda: failover_mid_recovery)
    print()
    print(
        series_table(
            "Figure 12 variant: coordinator failover during partitioned recovery",
            "seconds",
            "ops/sec",
            {"sift": result.series},
        )
    )
    assert "deposed" in marks, "the memory node never entered recovery"
    assert "recovered" in marks, "the node never rejoined after the failover"
    gap_s = (marks["recovered"] - marks["deposed"]) / 1e6
    print(f"deposed mid-copy; node 2 live again {gap_s * 1000:.0f} ms later")

    # The recovery that finally completed ran under the successor, on
    # the partitioned path, and rebuilt the full image.
    copy = marks.get("copy")
    assert copy is not None, "successor kept no copy stats for node 2"
    assert copy["partitions"] == 4

    # Throughput returns to the pre-failure level despite the stacked
    # faults (memory node + coordinator).
    pre = [ops for t, ops in result.series if 0.2 <= t < MEM_KILL_AT / 1e6]
    pre_mean = sum(pre) / len(pre)
    recovered_s = (marks["recovered"] - result.base_us) / 1e6
    post = [ops for t, ops in result.series if t >= recovered_s + 0.3]
    assert post, "no post-recovery windows"
    post_mean = sum(post) / len(post)
    assert post_mean > 0.8 * pre_mean, (pre_mean, post_mean)
