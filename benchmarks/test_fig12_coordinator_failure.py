"""Figure 12: throughput timeline through a coordinator failure (§6.5).

"A coordinator failure causes the system to pause processing client
requests until the system has been brought to a consistent state."
Recovery = heartbeat detection (~21 ms at 7 ms reads x 3 misses), then
replicated-memory log recovery, then loading the KV index table and
bitmap and replaying the KV log — the last phase dominating, exactly as
in the paper.  The cache fills during replay, so the store resumes warm
and with a burst (drained client queues).
"""

import pytest

from repro.bench import run_timeline, sift_spec
from repro.bench.calibration import BenchScale
from repro.bench.report import series_table, sparkline
from repro.chaos import FaultSchedule
from repro.sim.units import MS, SEC
from repro.workloads import WORKLOADS

KILL_AT = 0.6 * SEC
DURATION = 4.0 * SEC
CLIENTS = 10


@pytest.fixture(scope="module")
def timeline():
    scale = BenchScale()
    spec = sift_spec(cores=12, scale=scale)
    marks = {}

    def watch_takeover(group):
        marks["killed"] = group.fabric.sim.now

        def watch():
            sim = group.fabric.sim
            while group.serving_coordinator() is None:
                yield sim.timeout(5 * MS)
            marks["serving"] = sim.now
            coordinator = group.serving_coordinator()
            marks["replayed"] = coordinator.app.stats["replayed"]

        group.fabric.sim.spawn(watch(), name="watch-takeover")

    schedule = (
        FaultSchedule()
        .crash_leader(KILL_AT)
        .probe(KILL_AT, watch_takeover, "watch takeover")
    )
    result = run_timeline(
        spec,
        WORKLOADS["read-heavy"],
        CLIENTS,
        DURATION,
        events=schedule,
        scale=scale,
    )
    return result, marks


def test_fig12(timeline, once):
    result, marks = once(lambda: timeline)
    values = [ops for _t, ops in result.series]
    print()
    print(
        series_table(
            "Figure 12: read-heavy throughput during a coordinator failure",
            "seconds",
            "ops/sec",
            {"sift": result.series},
        )
    )
    print("timeline:", sparkline(values))
    gap_s = (marks["serving"] - marks["killed"]) / 1e6
    print(
        f"takeover after {gap_s * 1000:.0f} ms "
        f"(KV records replayed: {marks.get('replayed')})"
    )

    assert "serving" in marks, "no successor coordinator took over"

    pre = [ops for t, ops in result.series if 0.2 <= t < KILL_AT / 1e6]
    pre_mean = sum(pre) / len(pre)
    # Rebase the absolute marks into the series' time frame.
    serving_s = (marks["serving"] - result.base_us) / 1e6

    # The pause: windows between the kill and the takeover are (near)
    # zero — the group cannot serve without a coordinator.
    paused = [
        ops
        for t, ops in result.series
        if KILL_AT / 1e6 + 0.1 <= t < serving_s - 0.1
    ]
    if paused:
        assert max(paused) < 0.2 * pre_mean, "requests served with no coordinator?"

    # Detection (~21 ms) is a small part of the gap; structure recovery
    # dominates, as in the paper's 21 ms vs ~6 s breakdown.
    detection_budget_s = 0.050
    assert gap_s > detection_budget_s

    # Service resumes and returns to the pre-failure level.
    post = [ops for t, ops in result.series if t >= serving_s + 0.5]
    assert post, "no post-recovery windows"
    post_mean = sum(post) / len(post)
    assert post_mean > 0.85 * pre_mean, (pre_mean, post_mean)
