"""Ablation: the coordinator cache (§4.2 / §6.3.2).

"We limit the effect of remote reads through the cache, resulting in
read throughput similar to Raft-R."  This ablation removes / shrinks
the cache and shows read-heavy throughput degrading toward the
remote-read-bound regime — the design choice that lets a stateless CPU
node compete with a leader that holds a full local replica.
"""

import pytest

from repro.bench import run_throughput, sift_spec
from repro.bench.calibration import BenchScale
from repro.bench.report import series_table
from repro.workloads import WORKLOADS

CACHE_FRACTIONS = [0.0, 0.1, 0.5]


@pytest.fixture(scope="module")
def results():
    scale = BenchScale()
    out = []
    for fraction in CACHE_FRACTIONS:
        spec = sift_spec(
            cores=12, scale=scale, kv_overrides=dict(cache_fraction=fraction)
        )
        result = run_throughput(spec, WORKLOADS["read-heavy"], scale=scale)
        out.append((fraction, result.ops_per_sec))
    return out


def test_ablation_cache(results, once):
    print()
    print(
        once(
            lambda: series_table(
                "Ablation: read-heavy throughput vs. cache size",
                "cache fraction of key space",
                "ops/sec",
                {"sift": results},
            )
        )
    )
    values = dict(results)
    # More cache never hurts, and the paper's 50% setting buys a
    # significant margin over running cache-less.
    assert values[0.1] >= values[0.0] * 0.95
    assert values[0.5] >= values[0.1] * 0.95
    assert values[0.5] > values[0.0] * 1.1
