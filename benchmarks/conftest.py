"""Shared benchmark configuration.

Scale knobs are environment variables (see
:mod:`repro.bench.calibration`); the defaults keep a full
``pytest benchmarks/ --benchmark-only`` run in the tens of minutes.
The single-shot runner itself lives in :mod:`repro.testing` (shared
with the test suite's conftest machinery).
"""

import pytest

from repro.testing import run_once


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`repro.testing.run_once`."""

    def runner(fn):
        return run_once(benchmark, fn)

    return runner
