"""Shared benchmark configuration.

Every benchmark runs a deterministic simulated experiment exactly once
(``rounds=1``): the numbers of interest are the *simulated* metrics the
module prints, not the harness wall time pytest-benchmark records.

Scale knobs are environment variables (see
:mod:`repro.bench.calibration`); the defaults keep a full
``pytest benchmarks/ --benchmark-only`` run in the tens of minutes.
"""

import pytest


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(fn):
        return run_once(benchmark, fn)

    return runner
