"""Figure 11: throughput timeline through a memory-node failure (§6.5).

"Read-heavy workload throughput during a memory node failure": the node
is killed, later restarted, the coordinator incrementally copies state
back under read locks ("throughput drops as regions of memory are
copied over"), and the node rejoins — after which throughput returns to
its pre-failure level.  Hot keys live at low addresses, so the paper
sees near-worst-case impact immediately; our preloader lays keys out
the same way.
"""

import pytest

from repro.bench import run_timeline, sift_spec
from repro.bench.calibration import BenchScale
from repro.bench.report import series_table, sparkline
from repro.chaos import FaultSchedule
from repro.sim.units import MS, SEC
from repro.workloads import WORKLOADS

KILL_AT = 0.6 * SEC
RESTART_AT = 0.9 * SEC
DURATION = 3.0 * SEC
CLIENTS = 10


@pytest.fixture(scope="module")
def timeline():
    scale = BenchScale()
    spec = sift_spec(cores=12, scale=scale)
    recovered_at = []

    def watch_recovery(group):
        def watch():
            coordinator = group.serving_coordinator()
            while coordinator.repmem.states[2] != "live":
                yield group.fabric.sim.timeout(10 * MS)
            recovered_at.append(group.fabric.sim.now)

        group.fabric.sim.spawn(watch(), name="watch-recovery")

    schedule = (
        FaultSchedule()
        .crash_memory_node(KILL_AT, 2)
        .restart_memory_node(RESTART_AT, 2)
        .probe(RESTART_AT, watch_recovery, "watch recovery")
    )
    result = run_timeline(
        spec,
        WORKLOADS["read-heavy"],
        CLIENTS,
        DURATION,
        events=schedule,
        scale=scale,
    )
    return result, recovered_at


def test_fig11(timeline, once):
    result, recovered_at = once(lambda: timeline)
    values = [ops for _t, ops in result.series]
    print()
    print(
        series_table(
            "Figure 11: read-heavy throughput during a memory node failure",
            "seconds",
            "ops/sec",
            {"sift": result.series},
        )
    )
    print("timeline:", sparkline(values))
    print("events:", result.events, "recovery completed:", bool(recovered_at))

    pre = [ops for t, ops in result.series if 0.2 * SEC / 1e6 <= t < KILL_AT / 1e6]
    pre_mean = sum(pre) / len(pre)

    # The node must have fully rejoined within the run.
    assert recovered_at, "memory node never finished recovery"

    # Rebase the absolute recovery timestamp into the series' frame.
    recovery_s = (recovered_at[0] - result.base_us) / 1e6
    # The copy's contention straddles window boundaries: include the
    # window the restart lands in, not just windows starting after it.
    during = [
        ops
        for t, ops in result.series
        if RESTART_AT / 1e6 - 0.1 <= t < recovery_s
    ]
    post = [ops for t, ops in result.series if t >= recovery_s + 0.3]
    assert post, "no post-recovery windows measured"
    post_mean = sum(post) / len(post)

    # Throughput dips while regions are copied...
    if during:
        assert min(during) < pre_mean * 0.98
    # ...and "the system returns to its pre-failure throughput level".
    assert post_mean > 0.85 * pre_mean, (pre_mean, post_mean)
    # The group never stops serving entirely (reads keep flowing).
    between = [ops for t, ops in result.series if KILL_AT / 1e6 <= t < recovery_s]
    assert min(between) > 0, "memory-node failure must not halt the group"


@pytest.fixture(scope="module")
def partition_sweep():
    """The recovery-time-vs-partitions sweep behind the fig11sweep CLI
    figure, at full benchmark scale.

    Runs at Fm = 2 so four live source links exist once one node fails:
    RAMCloud-style partitioned recovery splits the dead node's image
    across the sources, and aggregate copy bandwidth — hence recovery
    time — scales with the partition count.
    """
    from repro.bench.points import RECOVERY_SWEEP_PARTITIONS, _memnode_failure_run

    scale = BenchScale()
    return {
        partitions: _memnode_failure_run(
            False, scale, seed=0, f=2, recovery_partitions=partitions
        )
        for partitions in RECOVERY_SWEEP_PARTITIONS
    }


def test_fig11_partition_sweep(partition_sweep, once):
    runs = once(lambda: partition_sweep)
    print()
    for partitions, run in sorted(runs.items()):
        copy = run["copy"] or {}
        print(
            f"partitions={partitions}: recovery {run['recovery_precise_s']:.4f}s, "
            f"copy {copy.get('copy_us', 0) / 1000:.2f}ms via "
            f"{len(copy.get('sources', []))} source links"
        )

    widths = sorted(runs)
    for partitions in widths:
        run = runs[partitions]
        assert run["recovery_precise_s"] is not None, (
            f"p={partitions} never finished recovery"
        )
        assert run["copy"]["partitions"] == partitions
    # Every width rebuilds the same image...
    sizes = {runs[p]["copy"]["bytes"] for p in widths}
    assert len(sizes) == 1, sizes
    # ...and each doubling of source links strictly shortens recovery.
    times = [runs[p]["recovery_precise_s"] for p in widths]
    assert all(a > b for a, b in zip(times, times[1:])), dict(zip(widths, times))
