"""Figure 10: deployment cost relative to Raft-R, F=2, AWS and GCP.

Paper numbers: "A single Sift EC group now costs about 13% less than a
Raft-R group.  When both erasure codes and shared backup nodes are
used, a cost reduction of up to 56% is achieved."
"""

import pytest

from repro.bench.report import bar_table
from repro.cluster import relative_costs


def test_fig10(once):
    costs = once(lambda: {p: relative_costs(p, 2) for p in ("aws", "gcp")})
    labels = list(costs["aws"].keys())
    print()
    print(
        bar_table(
            "Figure 10: cost relative to Raft-R (%), F=2, 100 groups",
            labels,
            {provider: [costs[provider][label] for label in labels] for provider in costs},
            unit="% vs Raft-R",
        )
    )

    for provider in ("aws", "gcp"):
        c = costs[provider]
        # "A single Sift EC group now costs about 13% less than Raft-R."
        assert c["sift-ec"] == pytest.approx(-13.0, abs=5.0)
        # "a cost reduction of up to 56% is achieved."
        assert c["sift-ec + shared backups"] == pytest.approx(-56.0, abs=1.0)
        # "Sift costs decrease relatively across all configurations when
        # F is increased to 2."
        f1 = relative_costs(provider, 1)
        for label in labels:
            assert c[label] < f1[label]
