"""Ablation: concurrent background appliers (§4.2).

"Updates to multiple keys can be applied concurrently through the
locking of the local index table and bitmap structures."  With a single
applier, each put's chain walk (a remote read) serialises the apply
pipeline and the circular WAL's flow control throttles the write path;
with several appliers, independent keys overlap their round trips.
"""

import pytest

from repro.bench import run_throughput, sift_spec
from repro.bench.calibration import BenchScale
from repro.bench.report import series_table
from repro.workloads import WORKLOADS

WORKER_COUNTS = [1, 2, 8]


@pytest.fixture(scope="module")
def results():
    scale = BenchScale()
    out = []
    for workers in WORKER_COUNTS:
        spec = sift_spec(
            cores=12, scale=scale, kv_overrides=dict(apply_workers=workers)
        )
        result = run_throughput(spec, WORKLOADS["write-only"], scale=scale)
        out.append((workers, result.ops_per_sec))
    return out


def test_ablation_apply_workers(results, once):
    print()
    print(
        once(
            lambda: series_table(
                "Ablation: write-only throughput vs. apply workers",
                "concurrent appliers",
                "ops/sec",
                {"sift": results},
            )
        )
    )
    values = dict(results)
    assert values[8] > values[1] * 1.3, values  # concurrency pays
    assert values[2] >= values[1] * 0.95
