#!/usr/bin/env python
"""Lint: no bare ``print`` in library code under ``src/repro/``.

Library modules publish through :mod:`repro.obs` (metrics, tracer,
artifacts); stdout belongs to the CLI entry points.  A ``print`` call
is *bare* when it writes to stdout — i.e. has no ``file=`` keyword.
Explicit ``print(..., file=sys.stderr)`` diagnostics are allowed
anywhere; bare prints are allowed only in the CLI modules listed in
``CLI_MODULES``.

Run from the repo root (CI does)::

    python tools/check_no_print.py

Exit status 1 lists every violation as ``path:line``.  The tier-1 test
``tests/test_no_bare_print.py`` runs the same scan so violations fail
locally before CI.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Tuple

#: Modules whose job is terminal output: argparse CLIs and the report
#: helpers they print through.
CLI_MODULES = frozenset(
    {
        "repro/bench/cli.py",
        "repro/bench/perfbench.py",
        "repro/obs/compare.py",
        "repro/obs/export.py",
    }
)


def _repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _iter_sources(root: str) -> Iterator[Tuple[str, str]]:
    """(relative-to-src path, absolute path) for every library module."""
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(os.path.join(src, "repro")):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            absolute = os.path.join(dirpath, filename)
            yield os.path.relpath(absolute, src).replace(os.sep, "/"), absolute


def _bare_prints(tree: ast.AST) -> List[int]:
    """Line numbers of ``print(...)`` calls with no ``file=`` argument."""
    lines = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Name) and func.id == "print"):
            continue
        if any(keyword.arg == "file" for keyword in node.keywords):
            continue
        lines.append(node.lineno)
    return lines


def scan(root: str) -> List[str]:
    """Every violation in *root* as ``src/<module>:<line>`` strings."""
    violations = []
    for relative, absolute in _iter_sources(root):
        if relative in CLI_MODULES:
            continue
        with open(absolute, "r", encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=absolute)
        for line in _bare_prints(tree):
            violations.append(f"src/{relative}:{line}")
    return sorted(violations)


def main() -> int:
    violations = scan(_repo_root())
    if violations:
        print(
            f"{len(violations)} bare print(s) in library code "
            "(route output through repro.obs, print(file=sys.stderr), "
            "or add the module to CLI_MODULES if it is a CLI):",
            file=sys.stderr,
        )
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
