"""Tests for the vectorized open-loop load engine (repro.workloads.openloop).

The engine's determinism story rests on one contract: every vectorized
draw consumes the named RNG stream to exactly the values the scalar
per-op loop would have drawn.  The equivalence tests here pin that
contract (uniforms, coins, Zipf ranks, Poisson counts, striped-shard
assignment); the rest covers the admission-control units (token bucket,
bounded queues, shed accounting), the shared retry policy, and an
end-to-end engine run against a real sharded service — bounded
in-flight invariant, SLO histograms, and same-seed reproducibility.
"""

import math
import random

import numpy as np
import pytest

from repro.errors import ReproError
from repro.net import Fabric
from repro.obs import collecting
from repro.shard import HashRing, ShardedKvService
from repro.sim import MS, SEC, Simulator
from repro.sim.rng import RngStreams
from repro.workloads import (
    WORKLOADS,
    AdmissionControl,
    ArrivalGenerator,
    OpenLoopEngine,
    RetryPolicy,
    StripedZipfSampler,
    TokenBucket,
    UniformSampler,
    ZipfSampler,
    flip_batch,
    poisson_count,
    uniform_batch,
)


class TestUniformBatch:
    def test_matches_scalar_stream_exactly(self):
        batch = uniform_batch(random.Random(42), 1000)
        scalar = [random.Random(42).random() for _ in range(1)]  # warm check
        rng = random.Random(42)
        expected = [rng.random() for _ in range(1000)]
        assert batch.tolist() == expected
        assert scalar[0] == expected[0]

    def test_interleaving_batch_and_scalar_stays_aligned(self):
        """A batch consumes the generator exactly like n scalar calls,
        so mixing the two on one stream never desynchronises it."""
        a, b = random.Random(7), random.Random(7)
        got = []
        got.extend(uniform_batch(a, 10).tolist())
        got.append(a.random())
        got.extend(uniform_batch(a, 5).tolist())
        expected = [b.random() for _ in range(16)]
        assert got == expected

    def test_empty_batch_leaves_stream_untouched(self):
        a, b = random.Random(3), random.Random(3)
        assert len(uniform_batch(a, 0)) == 0
        assert a.random() == b.random()

    def test_flip_batch_matches_scalar_coins(self):
        a, b = random.Random(9), random.Random(9)
        flips = flip_batch(a, 500, 0.1)
        expected = [b.random() < 0.1 for _ in range(500)]
        assert flips.tolist() == expected


class TestSampleBatch:
    def test_zipf_batch_matches_scalar_samples(self):
        sampler = ZipfSampler(10_000, theta=0.99)
        a, b = random.Random(11), random.Random(11)
        batch = sampler.sample_batch(a, 2_000)
        expected = [sampler.sample(b) for _ in range(2_000)]
        assert batch.tolist() == expected

    def test_base_sampler_batch_matches_scalar(self):
        sampler = UniformSampler(512)
        a, b = random.Random(13), random.Random(13)
        batch = sampler.sample_batch(a, 300)
        expected = [sampler.sample(b) for _ in range(300)]
        assert batch.tolist() == expected


def scalar_poisson(rng, lam):
    """Reference chunked-Knuth sampler, one rng.random() per event."""
    total = 0
    remaining = float(lam)
    while remaining > 0.0:
        step = min(remaining, 500.0)
        remaining -= step
        threshold = math.exp(-step)
        product = 1.0
        count = 0
        while True:
            product *= rng.random()
            if product <= threshold:
                break
            count += 1
        total += count
    return total


class TestPoissonCount:
    @pytest.mark.parametrize("lam", [0.3, 2.0, 47.25, 256.0, 500.0])
    def test_count_matches_scalar_knuth(self, lam):
        """Single-chunk rates (lam <= 500, every per-window rate the
        engine actually draws): same seed, same count — only the number
        of uniforms consumed differs, because the vectorized blocks
        over-draw past the stopping point."""
        for seed in range(5):
            vec = poisson_count(random.Random(seed), lam)
            ref = scalar_poisson(random.Random(seed), lam)
            assert vec == ref, (lam, seed)

    def test_multi_chunk_rates_are_deterministic_and_sane(self):
        """Above the chunk cap the counts are chunk-wise Knuth on a
        shared stream (the over-draw shifts where chunk 2 starts, so a
        scalar replay diverges); pin determinism and the mean instead."""
        lam = 1234.5
        first = poisson_count(random.Random(8), lam)
        assert first == poisson_count(random.Random(8), lam)
        rng = random.Random(9)
        draws = [poisson_count(rng, lam) for _ in range(100)]
        mean = sum(draws) / len(draws)
        assert abs(mean - lam) < 5.0 * math.sqrt(lam / len(draws)) + 1.0

    def test_zero_and_negative_rates(self):
        rng = random.Random(0)
        assert poisson_count(rng, 0.0) == 0
        assert poisson_count(rng, -1.0) == 0

    def test_mean_tracks_lambda(self):
        rng = random.Random(17)
        lam = 80.0
        draws = [poisson_count(rng, lam) for _ in range(400)]
        mean = sum(draws) / len(draws)
        assert abs(mean - lam) < 3.0 * math.sqrt(lam / len(draws)) + 1.0

    def test_deterministic(self):
        assert poisson_count(random.Random(5), 321.5) == poisson_count(
            random.Random(5), 321.5
        )


class TestStripedZipfSampler:
    def test_key_table_matches_scalar_nonce_walk(self):
        """Batched construction is an optimisation only: the table is
        byte-identical to walking nonce candidates one ring call at a
        time."""
        ring = HashRing(["alpha", "beta", "gamma"])
        sampler = StripedZipfSampler(90, ring)
        shards = ring.shards
        for rank in range(90):
            nonce = 0
            while True:
                candidate = b"key%018d.%04d" % (rank, nonce)
                if ring.shard_for(candidate) == shards[rank % 3]:
                    break
                nonce += 1
            assert sampler.key(rank) == candidate, rank

    def test_shard_index_batch_is_the_striping_invariant(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        sampler = StripedZipfSampler(64, ring)
        ranks = np.arange(64, dtype=np.int64)
        owners = sampler.shard_index_batch(ranks)
        assert owners.tolist() == [r % 4 for r in range(64)]
        # ... and the invariant is real: the ring agrees key by key.
        for rank in range(64):
            assert ring.shard_for(sampler.key(rank)) == ring.shards[rank % 4]
        assert sampler.n_shards == 4
        assert sampler.shard_name(2) == ring.shards[2]


def make_generator(seed=21, n_shards=3, n_keys=300, n_clients=100_000):
    sim = Simulator()
    fabric = Fabric(sim, rng=RngStreams(seed=seed))
    ring = HashRing([f"s{i}" for i in range(n_shards)])
    sampler = StripedZipfSampler(n_keys, ring)
    generator = ArrivalGenerator(
        fabric, WORKLOADS["read-heavy"], sampler, n_clients, n_shards=n_shards
    )
    return generator, ring


class TestArrivalGenerator:
    def test_vectorized_batch_equals_scalar_batch(self):
        """The engine's hot path and the closed-loop per-op loop draw
        identical columns from identical seeds."""
        vec, _ = make_generator(seed=23)
        ref, ring = make_generator(seed=23)
        a = vec.batch(4_000)
        b = ref.scalar_batch(4_000)
        assert np.array_equal(a.ranks, b.ranks)
        assert np.array_equal(a.writes, b.writes)
        assert np.array_equal(a.shards, b.shards)
        assert np.array_equal(a.clients, b.clients)
        assert a.count == 4_000

    def test_scalar_batch_via_ring_walk_agrees(self):
        """Resolving shards the closed-loop way — render key, SHA-1,
        walk the ring — lands on the same shard column as rank % G."""
        vec, _ = make_generator(seed=29)
        ref, ring = make_generator(seed=29)
        a = vec.batch(500)
        b = ref.scalar_batch(500, ring=ring)
        assert np.array_equal(a.shards, b.shards)

    def test_window_count_consumes_only_the_arrival_stream(self):
        gen_a, _ = make_generator(seed=31)
        gen_b, _ = make_generator(seed=31)
        gen_a.window_count(200.0)  # draws from "...:arrivals" only
        assert np.array_equal(gen_a.batch(100).ranks, gen_b.batch(100).ranks)

    def test_rejects_mismatched_striping(self):
        sim = Simulator()
        fabric = Fabric(sim, rng=RngStreams(seed=1))
        ring = HashRing(["s0", "s1"])
        sampler = StripedZipfSampler(10, ring)
        with pytest.raises(ValueError):
            ArrivalGenerator(fabric, WORKLOADS["mixed"], sampler, 10, n_shards=3)

    def test_rejects_empty_population(self):
        sim = Simulator()
        fabric = Fabric(sim, rng=RngStreams(seed=1))
        with pytest.raises(ValueError):
            ArrivalGenerator(fabric, WORKLOADS["mixed"], ZipfSampler(10), 0)


class TestTokenBucket:
    def test_starts_full_and_clamps_at_burst(self):
        bucket = TokenBucket(rate_per_sec=1000.0, burst=50.0)
        assert bucket.take(20) == 20
        bucket.refill(10 * SEC)  # way more than needed
        assert bucket.tokens == 50.0

    def test_take_is_bounded_by_tokens(self):
        bucket = TokenBucket(rate_per_sec=0.0, burst=10.0)
        assert bucket.take(25) == 10
        assert bucket.take(1) == 0

    def test_refill_rate(self):
        bucket = TokenBucket(rate_per_sec=1000.0, burst=1000.0)
        bucket.take(1000)
        bucket.refill(250 * MS)  # 0.25 s at 1000/s
        assert bucket.take(10_000) == 250

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(-1.0, 10.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, -10.0)

    def test_admission_control_bucket(self):
        assert AdmissionControl().bucket() is None
        bucket = AdmissionControl(rate_ops_per_sec=2000.0).bucket()
        assert bucket.rate_per_sec == 2000.0
        assert bucket.burst == pytest.approx(100.0)  # 50 ms of rate
        explicit = AdmissionControl(rate_ops_per_sec=100.0, burst_ops=7.0).bucket()
        assert explicit.burst == 7.0


class FlakyError(ReproError):
    retryable = True


class FatalError(ReproError):
    retryable = False


def run_policy(policy, attempt):
    """Drive policy.execute() in a fresh simulator; returns (outcome, elapsed).

    *elapsed* is captured inside the process, right after the policy
    returns — it is exactly the simulated time the policy consumed.
    """
    sim = Simulator()
    box = {}

    def gen():
        box["outcome"] = yield from policy.execute(sim, attempt)
        box["elapsed"] = sim.now

    process = sim.spawn(gen())
    sim.run_until_settled(process, deadline=10 * SEC)
    assert process.settled
    if process.failed:
        raise process.exception
    return box["outcome"], box["elapsed"]


class TestRetryPolicy:
    def test_backoff_schedule_is_capped_exponential(self):
        policy = RetryPolicy(base_backoff_us=1 * MS, multiplier=2.0, cap_us=5 * MS)
        assert [policy.backoff_us(n) for n in range(5)] == [
            0.0,
            1 * MS,
            2 * MS,
            4 * MS,
            5 * MS,  # capped
        ]

    def test_success_adds_no_simulated_time(self):
        def attempt():
            return 7
            yield  # pragma: no cover — makes this a generator

        outcome, elapsed = run_policy(RetryPolicy(), attempt)
        assert outcome.ok and outcome.value == 7
        assert outcome.attempts == 1 and outcome.retries == 0
        assert elapsed == 0.0

    def test_retryable_error_retries_with_backoff_then_gives_up(self):
        calls = []

        def attempt():
            calls.append(1)
            raise FlakyError("still down")
            yield  # pragma: no cover

        policy = RetryPolicy(
            max_attempts=4, base_backoff_us=1 * MS, multiplier=2.0, cap_us=20 * MS
        )
        outcome, elapsed = run_policy(policy, attempt)
        assert not outcome.ok
        assert outcome.attempts == 4 and outcome.retries == 3
        assert isinstance(outcome.error, FlakyError)
        assert len(calls) == 4
        assert elapsed == (1 + 2 + 4) * MS  # backoff between attempts only

    def test_non_retryable_error_fails_immediately(self):
        def attempt():
            raise FatalError("no point")
            yield  # pragma: no cover

        outcome, elapsed = run_policy(RetryPolicy(max_attempts=5), attempt)
        assert not outcome.ok and outcome.attempts == 1
        assert isinstance(outcome.error, FatalError)
        assert elapsed == 0.0

    def test_recovers_after_transient_failures(self):
        state = {"left": 2}

        def attempt():
            if state["left"]:
                state["left"] -= 1
                raise FlakyError("transient")
            return "fine"
            yield  # pragma: no cover

        outcome, _ = run_policy(RetryPolicy(), attempt)
        assert outcome.ok and outcome.value == "fine"
        assert outcome.attempts == 3 and outcome.retries == 2

    def test_non_repro_errors_propagate(self):
        def attempt():
            raise RuntimeError("a bug, not a service condition")
            yield  # pragma: no cover

        with pytest.raises(RuntimeError):
            run_policy(RetryPolicy(), attempt)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_us=-1.0)


def run_engine(
    seed=41,
    offered=40_000.0,
    admission=None,
    measure_us=100 * MS,
    n_clients=50_000,
):
    """A short open-loop run against a live 2-shard service."""
    sim = Simulator()
    fabric = Fabric(sim, rng=RngStreams(seed=seed))
    service = ShardedKvService(fabric, shards=2, backups=1)
    service.start()
    sampler = StripedZipfSampler(256, service.ring)
    engine = OpenLoopEngine(
        fabric,
        service,
        WORKLOADS["mixed"],
        sampler,
        offered_ops_per_sec=offered,
        n_clients=n_clients,
        admission=admission or AdmissionControl(max_inflight=4, queue_limit=64),
    )
    sim.run(until=50 * MS)  # let coordinators come up
    engine.start()
    sim.run(until=100 * MS)  # warm the lanes
    engine.begin_measurement()
    sim.run(until=100 * MS + measure_us)
    engine.end_measurement()
    engine.stop()
    sim.run(until=150 * MS + measure_us)  # drain
    return engine


class TestOpenLoopEngine:
    def test_validation(self):
        sim = Simulator()
        fabric = Fabric(sim, rng=RngStreams(seed=1))
        service = ShardedKvService(fabric, shards=2, backups=1)
        sampler = StripedZipfSampler(16, service.ring)
        with pytest.raises(ValueError):
            OpenLoopEngine(
                fabric, service, WORKLOADS["mixed"], sampler, -1.0, 100
            )
        with pytest.raises(ValueError):
            OpenLoopEngine(
                fabric, service, WORKLOADS["mixed"], sampler, 1.0, 100, window_us=0
            )

    def test_underload_completes_without_shedding(self):
        with collecting() as registry:
            engine = run_engine()
        counts, shed = engine.counts, engine.shed
        assert counts["offered"] > 0
        assert counts["completed"] > 0.9 * counts["offered"]
        assert counts["errors"] == 0
        assert shed["throttle"] == 0 and shed["queue"] == 0
        # Both ops of the mixed workload flowed and were counted.
        assert engine.ops["read"] > 0 and engine.ops["write"] > 0
        assert counts["completed"] == engine.ops["read"] + engine.ops["write"]
        assert engine.achieved_ops_per_sec() > 0
        # A sizeable slice of the simulated population showed up.
        assert 0 < engine.clients_active <= engine.generator.n_clients
        # SLO histograms exist per shard with the promised percentiles.
        summary = engine.slo_summary()
        assert set(summary) == {g.name for g in engine.cluster.groups}
        for per_op in summary.values():
            for stats in per_op.values():
                assert {"p50", "p99", "p99.9"} <= set(stats)
                assert stats["count"] > 0
        # publish() lands the same numbers in the registry.
        engine.publish(registry)
        snap = registry.snapshot()
        assert snap["counters"]["openloop.completed"] == counts["completed"]

    def test_bounded_inflight_invariant(self):
        engine = run_engine(admission=AdmissionControl(max_inflight=3, queue_limit=64))
        peaks = engine.inflight_peaks()
        assert peaks  # one entry per shard lane
        for lane in engine.lanes:
            assert 0 < lane.inflight_peak <= 3, peaks
            assert lane.queued_peak <= 64

    def test_overload_sheds_on_the_queue(self):
        """Offered load far past the dispatch capacity: the bounded
        backlog sheds (counted, not silently deferred) and achieved
        stays pinned near capacity."""
        engine = run_engine(
            offered=400_000.0,
            admission=AdmissionControl(max_inflight=2, queue_limit=16),
        )
        assert engine.shed["queue"] > 0
        assert engine.counts["admitted"] < engine.counts["offered"]
        assert engine.counts["completed"] < engine.counts["offered"] * 0.8

    def test_token_bucket_sheds_with_reason_throttle(self):
        engine = run_engine(
            offered=100_000.0,
            admission=AdmissionControl(
                max_inflight=4, queue_limit=512, rate_ops_per_sec=20_000.0
            ),
        )
        assert engine.shed["throttle"] > 0
        # The throttle is ahead of the queues: what it admits fits.
        assert engine.counts["admitted"] <= engine.counts["offered"]

    def test_same_seed_reproduces_the_run_exactly(self):
        with collecting():
            first = run_engine(seed=43)
        with collecting():
            second = run_engine(seed=43)
        assert first.counts == second.counts
        assert first.shed == second.shed
        assert first.ops == second.ops
        assert first.slo_summary() == second.slo_summary()
        assert first.clients_active == second.clients_active

    def test_single_group_cluster_gets_one_lane(self):
        """A cluster without .groups is driven as one shard-0 lane."""
        sim = Simulator()
        fabric = Fabric(sim, rng=RngStreams(seed=47))
        service = ShardedKvService(fabric, shards=2, backups=1)
        service.start()
        group = service.groups[0]
        engine = OpenLoopEngine(
            fabric,
            group,
            WORKLOADS["read-heavy"],
            ZipfSampler(64),
            offered_ops_per_sec=10_000.0,
            n_clients=1_000,
            admission=AdmissionControl(max_inflight=2, queue_limit=32),
        )
        sim.run(until=50 * MS)
        engine.start()
        engine.begin_measurement()
        sim.run(until=120 * MS)
        engine.end_measurement()
        engine.stop()
        sim.run(until=140 * MS)
        assert len(engine.lanes) == 1
        assert engine.counts["completed"] > 0
        assert engine.counts["errors"] == 0
