"""Unit tests for the network substrate: latency, fabric, hosts, RPC."""

import random

import pytest

from repro.net import (
    Fabric,
    FixedLatency,
    HostDown,
    LinearLatency,
    PartitionController,
    RpcClient,
    RpcEndpoint,
    RpcTimeout,
    Unreachable,
)
from repro.net.rpc import Reply
from repro.sim import MS, Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def fabric(sim):
    return Fabric(sim)


class TestLatencyModels:
    def test_fixed_latency_constant(self):
        model = FixedLatency(12.0)
        rng = random.Random(0)
        assert model.sample(rng, 0) == 12.0
        assert model.sample(rng, 10_000) == 12.0
        assert model.mean(5) == 12.0

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)

    def test_linear_scales_with_size(self):
        model = LinearLatency(base_us=2.0, bytes_per_us=1000.0)
        rng = random.Random(0)
        assert model.sample(rng, 0) == 2.0
        assert model.sample(rng, 1000) == 3.0
        assert model.mean(2000) == 4.0

    def test_linear_jitter_bounded(self):
        model = LinearLatency(base_us=10.0, bytes_per_us=1e9, jitter=0.1)
        rng = random.Random(1)
        samples = [model.sample(rng, 0) for _ in range(2000)]
        assert all(2.0 <= s <= 13.0 for s in samples)  # clipped at 0.2x..1+3sigma
        mean = sum(samples) / len(samples)
        assert 9.5 <= mean <= 10.5

    def test_linear_validation(self):
        with pytest.raises(ValueError):
            LinearLatency(base_us=-1)
        with pytest.raises(ValueError):
            LinearLatency(base_us=1, bytes_per_us=0)
        with pytest.raises(ValueError):
            LinearLatency(base_us=1, jitter=-0.1)


class TestHost:
    def test_execute_charges_cpu(self, sim, fabric):
        host = fabric.add_host("h", cores=1)
        done = []
        host.execute(5.0).add_callback(lambda ev: done.append(sim.now))
        sim.run()
        assert done == [5.0]

    def test_crash_kills_processes(self, sim, fabric):
        host = fabric.add_host("h")
        hits = []

        def loop():
            while True:
                yield sim.timeout(1.0)
                hits.append(sim.now)

        host.spawn(loop())
        sim.run(until=2.5)
        host.crash()
        sim.run(until=10.0)
        assert hits == [1.0, 2.0]
        assert not host.alive

    def test_spawn_on_dead_host_raises(self, sim, fabric):
        host = fabric.add_host("h")
        host.crash()
        with pytest.raises(HostDown):
            host.spawn(iter(()))

    def test_execute_on_dead_host_fails_event(self, sim, fabric):
        host = fabric.add_host("h")
        host.crash()
        event = host.execute(1.0)
        assert event.failed and isinstance(event.exception, HostDown)

    def test_restart_bumps_incarnation(self, sim, fabric):
        host = fabric.add_host("h")
        host.crash()
        host.restart()
        assert host.alive and host.incarnation == 1

    def test_crash_is_idempotent(self, sim, fabric):
        host = fabric.add_host("h")
        host.crash()
        host.crash()
        assert host.incarnation == 0

    def test_duplicate_host_name_rejected(self, fabric):
        fabric.add_host("dup")
        with pytest.raises(ValueError):
            fabric.add_host("dup")


class TestFabricDelivery:
    def test_message_arrives_after_latency(self, sim, fabric):
        a = fabric.add_host("a")
        b = fabric.add_host("b")
        got = []
        fabric.deliver(a, b, 0, lambda: got.append(sim.now), latency=FixedLatency(7.0))
        sim.run()
        assert got == [7.0]

    def test_message_to_dead_host_dropped_at_send(self, sim, fabric):
        a = fabric.add_host("a")
        b = fabric.add_host("b")
        b.crash()
        assert not fabric.deliver(a, b, 0, lambda: pytest.fail("delivered"))

    def test_message_lost_if_destination_dies_in_flight(self, sim, fabric):
        a = fabric.add_host("a")
        b = fabric.add_host("b")
        got = []
        fabric.deliver(a, b, 0, lambda: got.append(1), latency=FixedLatency(10.0))
        sim.schedule(5.0, b.crash)
        sim.run()
        assert got == []

    def test_message_lost_if_destination_restarts_in_flight(self, sim, fabric):
        a = fabric.add_host("a")
        b = fabric.add_host("b")
        got = []
        fabric.deliver(a, b, 0, lambda: got.append(1), latency=FixedLatency(10.0))
        sim.schedule(5.0, b.crash)
        sim.schedule(6.0, b.restart)
        sim.run()
        assert got == []  # new incarnation must not receive old traffic

    def test_send_from_dead_host_raises(self, sim, fabric):
        a = fabric.add_host("a")
        b = fabric.add_host("b")
        a.crash()
        with pytest.raises(HostDown):
            fabric.deliver(a, b, 0, lambda: None)

    def test_blocked_pair_unreachable(self, sim, fabric):
        a = fabric.add_host("a")
        b = fabric.add_host("b")
        fabric.block("a", "b")
        assert not fabric.reachable("a", "b")
        assert not fabric.deliver(a, b, 0, lambda: pytest.fail("delivered"))
        fabric.unblock("a", "b")
        assert fabric.reachable("a", "b")

    def test_isolation_cuts_both_directions(self, fabric):
        fabric.add_host("a")
        fabric.add_host("b")
        fabric.isolate("a")
        assert not fabric.reachable("a", "b")
        assert not fabric.reachable("b", "a")
        fabric.rejoin("a")
        assert fabric.reachable("a", "b")

    def test_partition_formed_in_flight_drops_message(self, sim, fabric):
        a = fabric.add_host("a")
        b = fabric.add_host("b")
        got = []
        fabric.deliver(a, b, 0, lambda: got.append(1), latency=FixedLatency(10.0))
        sim.schedule(5.0, fabric.block, "a", "b")
        sim.run()
        assert got == []

    def test_round_trip(self, sim, fabric):
        a = fabric.add_host("a")
        b = fabric.add_host("b")

        def proc():
            yield fabric.round_trip(a, b, 100, 100, latency=FixedLatency(3.0))
            return sim.now

        assert sim.run_process(proc()) == 6.0

    def test_round_trip_fails_fast_when_unreachable(self, sim, fabric):
        a = fabric.add_host("a")
        b = fabric.add_host("b")
        fabric.block("a", "b")
        event = fabric.round_trip(a, b, 1, 1)
        assert event.failed and isinstance(event.exception, Unreachable)

    def test_traffic_counters(self, sim, fabric):
        a = fabric.add_host("a")
        b = fabric.add_host("b")
        fabric.deliver(a, b, 500, lambda: None)
        assert fabric.messages_sent == 1
        assert fabric.bytes_sent == 500


class TestPartitionController:
    def test_split_and_heal(self, fabric):
        for name in ("a", "b", "c", "d"):
            fabric.add_host(name)
        controller = PartitionController(fabric)
        controller.split(["a", "b"], ["c", "d"])
        assert not fabric.reachable("a", "c")
        assert not fabric.reachable("b", "d")
        assert fabric.reachable("a", "b")
        controller.heal()
        assert fabric.reachable("a", "c")

    def test_isolate_and_rejoin(self, fabric):
        fabric.add_host("a")
        fabric.add_host("b")
        controller = PartitionController(fabric)
        controller.isolate("a")
        assert not fabric.reachable("b", "a")
        controller.rejoin("a")
        assert fabric.reachable("b", "a")


class TestRpc:
    def _make(self, sim, fabric):
        server = fabric.add_host("server", cores=2)
        client_host = fabric.add_host("client", cores=2)
        endpoint = RpcEndpoint(server, fabric)
        client = RpcClient(client_host, fabric)
        return server, endpoint, client

    def test_plain_function_handler(self, sim, fabric):
        _server, endpoint, client = self._make(sim, fabric)
        endpoint.register("double", lambda x: x * 2)

        def proc():
            value = yield client.call(endpoint, "double", 21)
            return value

        assert sim.run_process(proc()) == 42

    def test_generator_handler_with_cpu(self, sim, fabric):
        server, endpoint, client = self._make(sim, fabric)

        def handler(payload):
            yield server.execute(10.0)
            return Reply(payload + 1, 128)

        endpoint.register("inc", handler)

        def proc():
            value = yield client.call(endpoint, "inc", 1)
            return value, sim.now

        value, elapsed = sim.run_process(proc())
        assert value == 2
        assert elapsed > 30.0  # two network legs + cpu

    def test_handler_exception_propagates_to_client(self, sim, fabric):
        _server, endpoint, client = self._make(sim, fabric)

        def handler(_payload):
            raise ValueError("nope")
            yield  # pragma: no cover

        endpoint.register("bad", handler)

        def proc():
            try:
                yield client.call(endpoint, "bad", None)
            except ValueError:
                return "propagated"

        assert sim.run_process(proc()) == "propagated"

    def test_unknown_method_times_out(self, sim, fabric):
        _server, endpoint, client = self._make(sim, fabric)

        def proc():
            try:
                yield client.call(endpoint, "missing", None, timeout_us=1 * MS)
            except RpcTimeout:
                return "timeout"

        assert sim.run_process(proc()) == "timeout"

    def test_dead_server_unreachable(self, sim, fabric):
        server, endpoint, client = self._make(sim, fabric)
        server.crash()

        def proc():
            try:
                yield client.call(endpoint, "x", None, timeout_us=1 * MS)
            except (Unreachable, RpcTimeout):
                return "failed"

        assert sim.run_process(proc()) == "failed"

    def test_server_crash_mid_request_times_out(self, sim, fabric):
        server, endpoint, client = self._make(sim, fabric)

        def handler(_payload):
            yield server.execute(100.0)
            return "late"

        endpoint.register("slow", handler)

        def proc():
            call = client.call(endpoint, "slow", None, timeout_us=5 * MS)
            sim.schedule(20.0, server.crash)
            try:
                yield call
            except RpcTimeout:
                return "timeout"

        assert sim.run_process(proc()) == "timeout"

    def test_unregister_stops_serving(self, sim, fabric):
        _server, endpoint, client = self._make(sim, fabric)
        endpoint.register("m", lambda x: x)
        endpoint.unregister("m")

        def proc():
            try:
                yield client.call(endpoint, "m", 1, timeout_us=1 * MS)
            except RpcTimeout:
                return "gone"

        assert sim.run_process(proc()) == "gone"

    def test_concurrent_requests_interleave(self, sim, fabric):
        server, endpoint, client = self._make(sim, fabric)

        def handler(payload):
            yield server.execute(10.0)
            return payload

        endpoint.register("echo", handler)

        def proc():
            calls = [client.call(endpoint, "echo", i) for i in range(8)]
            results = []
            for call in calls:
                results.append((yield call))
            return results

        assert sim.run_process(proc()) == list(range(8))

    def test_rpc_round_trip_is_about_50us(self, sim, fabric):
        """§6.3.3: ~50us of latency is attributed to the RPC layer."""
        _server, endpoint, client = self._make(sim, fabric)
        endpoint.register("noop", lambda x: x)

        def proc():
            start = sim.now
            yield client.call(endpoint, "noop", None)
            return sim.now - start

        elapsed = sim.run_process(proc())
        assert 30.0 <= elapsed <= 80.0
