"""Fast-engine vs reference-engine equivalence, and fast-path regressions.

``repro.sim.engine`` carries several optimisations (ready deque for
zero-delay entries, single-callback slot, lazy timeout cancellation,
heap compaction, skip-ahead ``run_until_settled``); ``repro.sim.
reference`` is the verbatim pre-optimisation engine.  The contract is
that both execute any schedule in exactly the same order at exactly the
same virtual times — these tests drive identical workloads through both
and compare full execution traces, then pin the fast-path edge cases
individually (including the compaction-during-run bug where rebinding
the queue containers instead of mutating them in place silently dropped
events).
"""

import random

import pytest

from repro.sim import engine, reference

ENGINES = [engine, reference]


def _trace_of(mod, workload):
    """Run *workload(sim, mod, mark)* to completion; return the trace."""
    sim = mod.Simulator()
    trace = []

    def mark(tag):
        trace.append((sim.now, tag))

    workload(sim, mod, mark)
    sim.run()
    return trace


def assert_equivalent(workload):
    fast = _trace_of(engine, workload)
    ref = _trace_of(reference, workload)
    assert fast == ref
    assert fast  # a workload that marks nothing tests nothing


# -- trace equivalence -------------------------------------------------------


class TestTraceEquivalence:
    def test_same_timestamp_fifo(self):
        """Zero-delay entries interleaved with delayed entries that land
        at the same instant must run in seq order — the ready deque must
        not jump ahead of (or fall behind) equal-time heap entries."""

        def workload(sim, mod, mark):
            def at_zero():
                # Scheduled from inside a callback: lands in the ready
                # deque at the same timestamp as the heap entries below.
                sim.schedule(0.0, mark, "z1")
                sim.schedule(2.0, mark, "d-later")
                sim.schedule(0.0, mark, "z2")

            sim.schedule(1.0, at_zero)
            sim.schedule(1.0, mark, "d1")  # same instant as z1/z2
            sim.schedule(1.0, mark, "d2")
            sim.schedule(0.0, mark, "immediate")

        assert_equivalent(workload)

    def test_process_chains_and_combinators(self):
        def workload(sim, mod, mark):
            def worker(i):
                yield sim.timeout(1.0 + i)
                mark(f"w{i}.a")
                yield sim.timeout(0.0)  # zero-delay resume
                mark(f"w{i}.b")
                return i * 10

            procs = [sim.spawn(worker(i), name=f"w{i}") for i in range(4)]
            q = mod.quorum(sim, procs, 2)
            q.add_callback(lambda ev: mark(("quorum", ev.value)))
            a = mod.all_of(sim, [sim.timeout(3.0, "x"), sim.timeout(1.0, "y")])
            a.add_callback(lambda ev: mark(("all", ev.value)))
            first = mod.any_of(sim, [sim.timeout(7.0), sim.timeout(2.0, "fast")])
            first.add_callback(lambda ev: mark(("any", ev.value)))

        assert_equivalent(workload)

    def test_cancelled_guard_timers_are_invisible(self):
        """The guard-timer pattern: the timeout's callback is a no-op
        once the guarded event settled, so cancelling must not shift
        the timing of anything else (on either engine — the reference
        engine ignores cancel and fires the no-op for real)."""

        def workload(sim, mod, mark):
            def guarded(i):
                done = sim.event()
                guard = sim.schedule(50.0, done.try_fail, RuntimeError("to"))
                sim.schedule(1.0 + i, done.try_trigger, i)
                done.add_callback(lambda ev: sim.cancel(guard))
                done.add_callback(lambda ev: mark(("done", i, ev.value)))

            for i in range(30):
                guarded(i)
            sim.schedule(60.0, mark, "after-guard-window")

        assert_equivalent(workload)

    def test_randomised_schedules(self):
        """Seeded op soup: schedules, timers (some cancelled), process
        chains — interpreted identically on both engines."""
        for seed in (7, 23, 101):
            ops = self._build_ops(seed, n=300)

            def workload(sim, mod, mark, ops=ops):
                for op in ops:
                    kind = op[0]
                    if kind == "sched":
                        _, delay, i = op
                        sim.schedule(delay, mark, f"s{i}")
                    elif kind == "timer":
                        _, delay, cancelled, i = op
                        timer = sim.timeout(delay)
                        if cancelled:
                            timer.add_callback(lambda _ev: None)
                            timer.cancel()
                        else:
                            timer.add_callback(lambda _ev, i=i: mark(f"t{i}"))
                    else:  # proc
                        _, delay, steps, i = op

                        def proc(delay=delay, steps=steps, i=i):
                            for k in range(steps):
                                yield sim.timeout(delay)
                                mark(f"p{i}.{k}")

                        sim.spawn(proc(), name=f"p{i}")

            assert_equivalent(workload)

    @staticmethod
    def _build_ops(seed, n):
        rng = random.Random(seed)
        delays = (0.0, 0.0, 0.5, 1.0, 2.5, 2.5, 7.0, 40.0)
        ops = []
        for i in range(n):
            r = rng.random()
            if r < 0.4:
                ops.append(("sched", rng.choice(delays), i))
            elif r < 0.75:
                ops.append(("timer", rng.choice(delays), rng.random() < 0.5, i))
            else:
                ops.append(("proc", rng.choice(delays), rng.randint(1, 3), i))
        return ops


# -- run_until_settled skip-ahead --------------------------------------------


class TestRunUntilSettled:
    @pytest.mark.parametrize("settle_at,deadline", [
        (123_456.789, 500_000.0),   # many skipped steps, fractional time
        (999.5, 500_000.0),         # inside the first step
        (499_999.9, 500_000.0),     # just under the deadline
    ])
    def test_clock_matches_reference(self, settle_at, deadline):
        outcomes = []
        for mod in ENGINES:
            sim = mod.Simulator()
            done = sim.event()
            sim.schedule(settle_at, done.try_trigger, "v")
            # Background churn so the queue is never empty.
            def heartbeat():
                while True:
                    yield sim.timeout(5_000.0)
            sim.spawn(heartbeat(), name="hb")
            settled = sim.run_until_settled(done, deadline=deadline)
            outcomes.append((settled, sim.now))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] is True

    def test_never_settles_reaches_deadline(self):
        outcomes = []
        for mod in ENGINES:
            sim = mod.Simulator()
            done = sim.event()
            sim.schedule(10.0, lambda: None)
            settled = sim.run_until_settled(done, deadline=77_777.25)
            outcomes.append((settled, sim.now))
        assert outcomes[0] == outcomes[1] == (False, 77_777.25)

    def test_empty_queue_jumps_to_deadline(self):
        sim = engine.Simulator()
        done = sim.event()
        assert sim.run_until_settled(done, deadline=1_000.0) is False
        assert sim.now == 1_000.0


# -- fast-path edge cases ----------------------------------------------------


class TestTimeoutCancel:
    def test_cancel_pending(self):
        sim = engine.Simulator()
        timer = sim.timeout(10.0)
        fired = []
        timer.add_callback(fired.append)
        assert timer.cancel() is True
        assert timer.settled and timer.failed
        sim.run()
        assert fired == []  # detached callback never runs

    def test_cancel_is_idempotent_and_late_cancel_noops(self):
        sim = engine.Simulator()
        timer = sim.timeout(10.0)
        timer.add_callback(lambda _ev: None)
        assert timer.cancel() is True
        assert timer.cancel() is False
        fired_timer = sim.timeout(1.0)
        fired_timer.add_callback(lambda _ev: None)
        sim.run()
        assert fired_timer.ok
        assert fired_timer.cancel() is False  # already fired

    def test_consumed_entry_cannot_corrupt_cancel_count(self):
        """A callback that fires keeps a reference to its own entry; a
        late ``sim.cancel`` on it must not increment the dead-entry
        counter (that drift made compaction fire on a clean heap)."""
        sim = engine.Simulator()
        entry = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.cancel(entry) is False
        assert sim._cancelled == 0

    def test_zero_delay_timeout_cancel(self):
        sim = engine.Simulator()
        timer = sim.timeout(0.0)  # lives in the ready deque, not the heap
        timer.add_callback(lambda _ev: None)
        assert timer.cancel() is True
        marks = []
        sim.schedule(0.0, marks.append, "ran")
        sim.run()
        assert marks == ["ran"]


class TestCompactionDuringRun:
    """Regression: compaction must mutate the queue containers in place.

    ``run()`` holds local references to the heap and the ready deque; an
    early version of ``_note_cancelled`` rebound ``self._queue`` and
    ``self._ready`` to fresh containers during compaction, so every
    event scheduled after the compaction point went into containers the
    running loop never looked at — and silently never fired.
    """

    def test_mass_cancel_mid_run_keeps_live_events(self):
        sim = engine.Simulator()
        fired = []
        # Enough dead timers to cross the compaction threshold (512).
        timers = [sim.timeout(100.0 + i) for i in range(1500)]
        for t in timers:
            t.add_callback(lambda _ev: None)
        survivors = [sim.timeout(200_000.0 + i) for i in range(20)]
        for i, t in enumerate(survivors):
            t.add_callback(lambda _ev, i=i: fired.append(f"live{i}"))

        def mass_cancel():
            for t in timers:
                t.cancel()
            # Scheduled *after* compaction ran: lands in whatever
            # containers the simulator now points at.
            sim.schedule(1.0, fired.append, "post-compaction")
            sim.schedule(0.0, fired.append, "post-compaction-ready")

        sim.schedule(1.0, mass_cancel)
        sim.run()
        assert fired[:2] == ["post-compaction-ready", "post-compaction"]
        assert fired[2:] == [f"live{i}" for i in range(20)]
        assert sim._cancelled == 0  # compaction reset the counter

    def test_ready_deque_compaction_in_place(self):
        sim = engine.Simulator()
        fired = []

        def burst():
            doomed = [sim.timeout(0.0) for _ in range(600)]
            for t in doomed:
                t.add_callback(lambda _ev: None)
            for t in doomed:
                t.cancel()  # crosses the threshold; compacts the deque
            sim.schedule(0.0, fired.append, "alive")

        sim.schedule(0.0, burst)
        sim.run()
        assert fired == ["alive"]


class TestStaleProcessCallbacks:
    def test_killed_process_ignores_pending_resume(self):
        sim = engine.Simulator()
        gate = sim.event()
        steps = []

        def proc():
            steps.append("start")
            yield gate
            steps.append("resumed")  # must never happen

        process = sim.spawn(proc(), name="victim")
        sim.run()
        process.kill("crash injection")
        assert process.failed
        gate.trigger("late")  # the registered _resume fires, must no-op
        sim.run()
        assert steps == ["start"]

    def test_kill_while_resume_scheduled(self):
        """Kill between an event settling and the process advancing."""
        sim = engine.Simulator()
        steps = []

        def proc():
            yield sim.timeout(5.0)
            steps.append("after-timeout")

        process = sim.spawn(proc(), name="victim")
        sim.run(until=1.0)
        process.kill()
        sim.run()  # the timeout still fires; the dead process must not step
        assert steps == []
        assert process.failed and isinstance(process.exception, engine.ProcessKilled)

    def test_joiner_sees_killed_process(self):
        sim = engine.Simulator()
        seen = []

        def victim():
            yield sim.timeout(100.0)

        def joiner(target):
            try:
                yield target
            except engine.ProcessKilled:
                seen.append("killed")

        target = sim.spawn(victim(), name="victim")
        sim.spawn(joiner(target), name="joiner")
        sim.run(until=1.0)
        target.kill()
        sim.run()
        assert seen == ["killed"]


class TestCombinatorSettledBehaviour:
    def test_quorum_ignores_late_completions(self):
        sim = engine.Simulator()
        children = [sim.event() for _ in range(5)]
        q = engine.quorum(sim, children, 2)
        children[3].trigger("a")
        children[1].trigger("b")
        assert q.ok and q.value == [(3, "a"), (1, "b")]
        assert q.events == ()  # child references dropped on settle
        children[0].trigger("late")
        children[4].fail(RuntimeError("late failure"))
        assert q.value == [(3, "a"), (1, "b")]

    def test_quorum_failure_path_drops_children(self):
        sim = engine.Simulator()
        children = [sim.event() for _ in range(3)]
        q = engine.quorum(sim, children, 2)
        children[0].fail(RuntimeError("x"))
        children[2].fail(RuntimeError("y"))
        assert q.failed and isinstance(q.exception, engine.QuorumError)
        assert q.events == ()
        children[1].trigger("late")  # must not resurrect the quorum
        assert q.failed

    def test_anyof_allof_drop_children(self):
        sim = engine.Simulator()
        a, b = sim.event(), sim.event()
        first = engine.any_of(sim, [a, b])
        a.trigger(1)
        assert first.ok and first.events == ()
        b.trigger(2)  # late, ignored
        assert first.value == (0, 1)

        c, d = sim.event(), sim.event()
        both = engine.all_of(sim, [c, d])
        c.trigger("c")
        d.trigger("d")
        assert both.ok and both.value == ["c", "d"]
        assert both.events == ()

    def test_many_callbacks_fire_in_registration_order(self):
        """The single-slot + overflow-list split must preserve order."""
        sim = engine.Simulator()
        ev = sim.event()
        order = []
        for i in range(5):
            ev.add_callback(lambda _ev, i=i: order.append(i))
        ev.trigger()
        assert order == [0, 1, 2, 3, 4]
