"""Unit tests for the memory-node substrate: admin word, WAL codec, node."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Fabric
from repro.sim import Simulator
from repro.storage import AdminWord, MemoryNode, MemoryNodeConfig, WalCodec, WalEntry, WalLayout
from repro.storage.memory_node import ADMIN_REGION, META_REGION, REPMEM_REGION
from repro.storage.wal import HEADER_BYTES


class TestAdminWord:
    def test_pack_unpack_roundtrip(self):
        word = AdminWord(term_id=5, node_id=3, timestamp=123_456)
        assert AdminWord.unpack(word.pack()) == word

    def test_zero_word(self):
        assert AdminWord.unpack(0) == AdminWord(0, 0, 0)

    def test_field_limits(self):
        AdminWord(0xFFFF, 0xFFFF, 0xFFFFFFFF).pack()  # max values fit
        with pytest.raises(ValueError):
            AdminWord(0x10000, 0, 0).pack()
        with pytest.raises(ValueError):
            AdminWord(0, 0x10000, 0).pack()
        with pytest.raises(ValueError):
            AdminWord(0, 0, 0x100000000).pack()

    def test_with_timestamp_wraps(self):
        word = AdminWord(1, 2, 0xFFFFFFFF)
        renewed = word.with_timestamp(0x1_0000_0005)
        assert renewed == AdminWord(1, 2, 5)

    def test_packing_is_order_preserving_in_term(self):
        """Higher term always packs to a numerically larger word."""
        low = AdminWord(3, 0xFFFF, 0xFFFFFFFF).pack()
        high = AdminWord(4, 0, 0).pack()
        assert high > low

    @given(
        term=st.integers(0, 0xFFFF),
        node=st.integers(0, 0xFFFF),
        ts=st.integers(0, 0xFFFFFFFF),
    )
    def test_roundtrip_property(self, term, node, ts):
        word = AdminWord(term, node, ts)
        assert AdminWord.unpack(word.pack()) == word


class TestWalLayout:
    def test_slot_geometry(self):
        layout = WalLayout(entry_count=128, payload_bytes=1000)
        assert layout.slot_bytes == HEADER_BYTES + 1000
        assert layout.total_bytes == 128 * layout.slot_bytes

    def test_slot_offsets_are_circular(self):
        layout = WalLayout(entry_count=4, payload_bytes=100)
        assert layout.slot_offset(1) == 0
        assert layout.slot_offset(4) == 3 * layout.slot_bytes
        assert layout.slot_offset(5) == 0  # wraps

    def test_indices_start_at_one(self):
        layout = WalLayout(entry_count=4, payload_bytes=100)
        with pytest.raises(ValueError):
            layout.slot_offset(0)


class TestWalCodec:
    def _codec(self, payload=1024):
        return WalCodec(WalLayout(entry_count=64, payload_bytes=payload))

    def test_roundtrip(self):
        codec = self._codec()
        entry = WalEntry(7, 4096, b"some data", term=3)
        assert codec.decode(codec.encode(entry)) == entry

    def test_empty_slot_decodes_none(self):
        codec = self._codec()
        assert codec.decode(bytes(codec.layout.slot_bytes)) is None

    def test_oversized_payload_rejected(self):
        codec = self._codec(payload=16)
        with pytest.raises(ValueError):
            codec.encode(WalEntry(1, 0, b"x" * 17))

    def test_corrupt_payload_detected(self):
        codec = self._codec()
        raw = bytearray(codec.encode(WalEntry(9, 64, b"payload", term=1)))
        raw[HEADER_BYTES] ^= 0xFF  # flip a payload bit
        assert codec.decode(bytes(raw)) is None

    def test_torn_header_detected(self):
        codec = self._codec()
        raw = bytearray(codec.encode(WalEntry(9, 64, b"payload", term=1)))
        raw[0] ^= 0x01  # index corrupted -> crc mismatch
        assert codec.decode(bytes(raw)) is None

    def test_truncated_slot_decodes_none(self):
        codec = self._codec()
        assert codec.decode(b"short") is None

    def test_stale_tail_from_previous_occupant_is_harmless(self):
        codec = self._codec()
        old = codec.encode(WalEntry(1, 0, b"A" * 200, term=1))
        new = codec.encode(WalEntry(65, 0, b"B" * 10, term=2))
        slot = bytearray(codec.layout.slot_bytes)
        slot[: len(old)] = old
        slot[: len(new)] = new  # shorter entry overwrites the header+payload
        decoded = codec.decode(bytes(slot))
        assert decoded == WalEntry(65, 0, b"B" * 10, term=2)

    @given(
        index=st.integers(1, 2**62),
        addr=st.integers(0, 2**62),
        term=st.integers(0, 2**62),
        data=st.binary(max_size=256),
    )
    @settings(max_examples=100)
    def test_roundtrip_property(self, index, addr, term, data):
        codec = WalCodec(WalLayout(entry_count=8, payload_bytes=256))
        entry = WalEntry(index, addr, data, term)
        assert codec.decode(codec.encode(entry)) == entry


class TestMemoryNodeConfig:
    def test_region_geometry(self):
        config = MemoryNodeConfig(wal_entries=16, wal_payload_bytes=100, data_bytes=1000)
        assert config.data_offset == config.wal_layout.total_bytes
        assert config.region_bytes == config.data_offset + 1000


class TestMemoryNode:
    def _node(self):
        sim = Simulator()
        fabric = Fabric(sim)
        config = MemoryNodeConfig(wal_entries=16, wal_payload_bytes=128, data_bytes=4096)
        return MemoryNode(fabric, "m0", 0, config=config)

    def test_exports_all_regions(self):
        node = self._node()
        assert node.listener.lookup(ADMIN_REGION) is node.admin_region
        assert node.listener.lookup(REPMEM_REGION) is node.repmem_region
        assert node.listener.lookup(META_REGION) is node.meta_region

    def test_volatile_restart_wipes_contents(self):
        node = self._node()
        node.repmem_region.write(0, b"data")
        node.meta_region.write_word(0, 1)
        node.crash()
        node.restart()
        assert node.repmem_region.read(0, 4) == bytes(4)
        assert node.meta_region.read_word(0) == 0

    def test_persistent_restart_keeps_contents(self):
        sim = Simulator()
        fabric = Fabric(sim)
        config = MemoryNodeConfig(
            wal_entries=16, wal_payload_bytes=128, data_bytes=4096, persistent=True
        )
        node = MemoryNode(fabric, "m0", 0, config=config)
        node.repmem_region.write(0, b"data")
        node.crash()
        node.restart()
        assert node.repmem_region.read(0, 4) == b"data"

    def test_restart_bumps_incarnation(self):
        node = self._node()
        node.crash()
        assert not node.alive
        node.restart()
        assert node.alive
        assert node.host.incarnation == 1
