"""Tests for the cloud-modelling package: pricing, costs, trace, pool sim."""

import random

import pytest

from repro.cluster import (
    PRICING,
    MachineSpec,
    TraceConfig,
    generate_trace,
    group_cost_per_hour,
    machine_cost_per_hour,
    machine_table,
    relative_costs,
    simulate_backup_pool,
)
from repro.cluster.backups import sweep_backup_pool
from repro.cluster.provision import TABLE2, deployment_machines


class TestPricing:
    def test_paper_constants(self):
        """§6.4.3's published marginal prices."""
        assert PRICING["aws"].per_core == 0.033
        assert PRICING["aws"].per_gb == 0.00275
        assert PRICING["gcp"].per_core == 0.033
        assert PRICING["gcp"].per_gb == 0.00445

    def test_machine_cost(self):
        spec = MachineSpec(cores=8, memory_gb=64)
        assert machine_cost_per_hour("aws", spec) == pytest.approx(8 * 0.033 + 64 * 0.00275)


class TestProvisioning:
    def test_table2_values(self):
        """Table 2 of the paper, verbatim."""
        assert TABLE2[("raft", 1)]["node"] == MachineSpec(8, 64)
        assert TABLE2[("sift", 1)]["cpu"] == MachineSpec(10, 32)
        assert TABLE2[("sift", 1)]["memory"] == MachineSpec(1, 64)
        assert TABLE2[("sift-ec", 1)]["cpu"] == MachineSpec(12, 32)
        assert TABLE2[("sift-ec", 1)]["memory"] == MachineSpec(1, 32)
        assert TABLE2[("sift-ec", 2)]["memory"] == MachineSpec(1, 22)

    def test_machine_table_rows(self):
        rows = machine_table(1)
        assert len(rows) == 5
        assert rows[0][0] == "Raft-R Node"

    def test_raft_deployment_counts(self):
        machines = deployment_machines("raft", 1)
        assert machines == [(MachineSpec(8, 64), 3)]
        assert deployment_machines("raft", 2)[0][1] == 5

    def test_sift_deployment_counts(self):
        machines = dict(
            (spec, count) for spec, count in deployment_machines("sift", 1)
        )
        assert machines[MachineSpec(10, 32)] == 2  # Fc + 1 CPU nodes
        assert machines[MachineSpec(1, 64)] == 3  # 2Fm + 1 memory nodes

    def test_shared_backups_amortise_cpu(self):
        machines = dict(deployment_machines("sift", 1, shared_backups=True, groups=100, backup_pool=2))
        assert machines[MachineSpec(10, 32)] == pytest.approx(1.02)


class TestCostAnalysis:
    def test_paper_headline_f1(self):
        """§6.4.3 / Fig 9: ~35% savings for Sift EC + shared backups, F=1."""
        costs = relative_costs("aws", 1)
        assert costs["sift-ec + shared backups"] == pytest.approx(-35.1, abs=0.5)
        assert costs["sift"] > 0  # plain Sift is marginally more expensive

    def test_paper_headline_f2(self):
        """§6.4.3 / Fig 10: 56% savings at F=2; EC alone ~13% cheaper."""
        costs = relative_costs("aws", 2)
        assert costs["sift-ec + shared backups"] == pytest.approx(-56.3, abs=0.5)
        assert costs["sift-ec"] == pytest.approx(-12.8, abs=0.5)

    def test_savings_improve_with_f(self):
        """§7: "Cost savings improve with higher values of F"."""
        for provider in ("aws", "gcp"):
            f1 = relative_costs(provider, 1)
            f2 = relative_costs(provider, 2)
            for config in f1:
                assert f2[config] < f1[config]

    def test_gcp_close_to_aws_for_ec(self):
        aws = relative_costs("aws", 1)["sift-ec + shared backups"]
        gcp = relative_costs("gcp", 1)["sift-ec + shared backups"]
        assert abs(aws - gcp) < 2.0

    def test_group_cost_positive(self):
        assert group_cost_per_hour("aws", "raft", 1) > 0


class TestTrace:
    def test_deterministic_for_seed(self):
        a = generate_trace(TraceConfig(), seed=4)
        b = generate_trace(TraceConfig(), seed=4)
        assert a == b
        assert a != generate_trace(TraceConfig(), seed=5)

    def test_time_sorted_and_in_range(self):
        config = TraceConfig(duration_days=2.0)
        events = generate_trace(config, seed=0)
        times = [event.time_s for event in events]
        assert times == sorted(times)
        assert all(0 <= t <= config.duration_s + config.burst_spread_s for t in times)
        assert all(0 <= event.machine < config.machines for event in events)

    def test_event_volume_plausible(self):
        events = generate_trace(TraceConfig(), seed=1)
        # 29 days of a ~12.5k machine cluster: thousands, not millions.
        assert 1_000 < len(events) < 20_000

    def test_bursts_create_concentrations(self):
        """Some 60-second windows must contain many failures (rack events)."""
        events = generate_trace(TraceConfig(), seed=2)
        best = 0
        window = []
        for event in events:
            window.append(event.time_s)
            while window and window[0] < event.time_s - 60:
                window.pop(0)
            best = max(best, len(window))
        assert best >= 20


class TestBackupPoolSim:
    def test_zero_backups_charges_full_provisioning(self):
        events = generate_trace(TraceConfig(duration_days=5), seed=0)
        result = simulate_backup_pool(events, 12_500, groups=100, backups=0, rng=random.Random(0))
        if result.coordinator_faults:
            assert result.recovery_time_per_fault_s > 0

    def test_more_backups_never_hurt(self):
        results = sweep_backup_pool([500], [0, 2, 6, 12], repetitions=3)
        times = [cell.recovery_time_per_fault_s for cell in results[500]]
        assert times == sorted(times, reverse=True)

    def test_more_groups_need_more_backups(self):
        results = sweep_backup_pool([100, 3000], [2], repetitions=3)
        assert (
            results[3000][0].recovery_time_per_fault_s
            >= results[100][0].recovery_time_per_fault_s
        )

    def test_paper_pool_sizes(self):
        """Fig 8: ~6 backups suffice for 1000 groups, ~20 for 3000."""
        results = sweep_backup_pool([1000, 3000], [6, 20], repetitions=5)
        assert results[1000][0].recovery_time_per_fault_s < 0.25
        assert results[3000][1].recovery_time_per_fault_s < 0.25

    def test_too_many_groups_rejected(self):
        events = generate_trace(TraceConfig(duration_days=1), seed=0)
        with pytest.raises(ValueError):
            simulate_backup_pool(events, 12_500, groups=4000, backups=0, rng=random.Random(0))
