"""Tests for the Disk Paxos reference implementation."""


from repro.baselines.diskpaxos import DiskPaxosInstance
from repro.net import Fabric
from repro.sim import SEC, Simulator


def make_instance(disks=3, proposers=2):
    sim = Simulator()
    fabric = Fabric(sim)
    instance = DiskPaxosInstance(fabric, disks=disks, proposers=proposers)
    return sim, fabric, instance


def run_all(sim, processes, until=30 * SEC):
    for process in processes:
        sim.run_until_settled(process, deadline=until)
    results = []
    for process in processes:
        assert process.settled
        if process.failed:
            raise process.exception
        results.append(process.value)
    return results


class TestSingleDecree:
    def test_single_proposer_chooses_its_value(self):
        sim, _fabric, instance = make_instance()
        proposer = instance.proposers[0]

        def scenario():
            yield from proposer.connect()
            return (yield from proposer.propose(b"value-A"))

        process = sim.spawn(scenario())
        results = run_all(sim, [process])
        assert results == [b"value-A"]

    def test_two_proposers_agree(self):
        """Agreement: both proposers decide the same value."""
        sim, _fabric, instance = make_instance()

        def scenario(proposer, value):
            yield from proposer.connect()
            return (yield from proposer.propose(value))

        processes = [
            sim.spawn(scenario(instance.proposers[0], b"from-p0")),
            sim.spawn(scenario(instance.proposers[1], b"from-p1")),
        ]
        results = run_all(sim, processes)
        assert results[0] == results[1]
        assert results[0] in (b"from-p0", b"from-p1")

    def test_agreement_under_contention_many_rounds(self):
        sim, _fabric, instance = make_instance(proposers=2)
        outcomes = []

        def scenario(proposer, value):
            yield from proposer.connect()
            chosen = yield from proposer.propose(value)
            outcomes.append(chosen)
            return chosen

        processes = [
            sim.spawn(scenario(p, b"v-%d" % i))
            for i, p in enumerate(instance.proposers)
        ]
        run_all(sim, processes, until=60 * SEC)
        assert len(set(outcomes)) == 1

    def test_tolerates_one_disk_failure(self):
        sim, _fabric, instance = make_instance(disks=3)
        instance.disks[1].crash()
        proposer = instance.proposers[0]

        def scenario():
            yield from proposer.connect()
            return (yield from proposer.propose(b"survives"))

        process = sim.spawn(scenario())
        assert run_all(sim, [process]) == [b"survives"]

    def test_majority_of_disks_required(self):
        sim, _fabric, instance = make_instance(disks=3)
        instance.disks[0].crash()
        instance.disks[1].crash()
        proposer = instance.proposers[0]

        def scenario():
            try:
                yield from proposer.connect()
            except Exception:
                return "unavailable"
            return "connected"

        process = sim.spawn(scenario())
        assert run_all(sim, [process]) == ["unavailable"]

    def test_later_proposer_learns_chosen_value(self):
        """A proposer arriving after a decision must adopt it, not its own."""
        sim, _fabric, instance = make_instance(proposers=2)
        first, second = instance.proposers

        def early():
            yield from first.connect()
            return (yield from first.propose(b"decided-early"))

        def late():
            yield sim.timeout(50_000)
            yield from second.connect()
            return (yield from second.propose(b"too-late"))

        processes = [sim.spawn(early()), sim.spawn(late())]
        results = run_all(sim, processes)
        assert results == [b"decided-early", b"decided-early"]
