"""Integration-style tests for the replicated memory layer.

These drive a full SiftGroup (election included) and exercise the §3.3
data path: logged writes, multi-writes, direct windows, WAL flow
control, node-death handling, and erasure-coded addressing.
"""


from repro.core import SiftConfig, SiftGroup
from repro.core.errors import InvalidAccess
from repro.core.membership import RESERVED_BYTES
from repro.net import Fabric
from repro.sim import MS, SEC, Simulator

BASE = RESERVED_BYTES


def make_group(**overrides):
    sim = Simulator()
    fabric = Fabric(sim)
    defaults = dict(fm=1, fc=1, data_bytes=128 * 1024, wal_entries=128)
    defaults.update(overrides)
    config = SiftConfig(**defaults)
    group = SiftGroup(fabric, config, name="t")
    group.start()
    return sim, fabric, group


def run(sim, gen, until=30 * SEC):
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled, "scenario did not finish (deadlock?)"
    if process.failed:
        raise process.exception
    return process.value


class TestDataPath:
    def test_write_then_read(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.write(BASE + 100, b"payload")
            return (yield from coord.repmem.read(BASE + 100, 7))

        assert run(sim, scenario()) == b"payload"

    def test_read_of_unwritten_memory_is_zero(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            return (yield from coord.repmem.read(BASE + 5000, 16))

        assert run(sim, scenario()) == bytes(16)

    def test_write_replicates_to_all_nodes(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.write(BASE, b"everywhere")
            # Wait for background applies to land on every node.
            while coord.repmem.applied_floor() < coord.repmem.next_index - 1:
                yield sim.timeout(1 * MS)
            offset = coord.repmem.amap.raw_extent(BASE)
            return [
                node.repmem_region.read(offset, 10) for node in group.memory_nodes
            ]

        assert run(sim, scenario()) == [b"everywhere"] * 3

    def test_overwrite_same_address(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            for round_number in range(5):
                yield from coord.repmem.write(BASE, b"round-%d" % round_number)
            return (yield from coord.repmem.read(BASE, 7))

        assert run(sim, scenario()) == b"round-4"

    def test_multi_write_is_atomic_against_other_writers(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem

            def pair_writer(value):
                yield from rm.multi_write(
                    [(BASE, bytes([value]) * 64), (BASE + 4096, bytes([value]) * 64)]
                )

            workers = [coord.host.spawn(pair_writer(v)) for v in (1, 2, 3, 4, 5)]
            for worker in workers:
                yield worker
            a = yield from rm.read(BASE, 64)
            b = yield from rm.read(BASE + 4096, 64)
            return a, b

        a, b = run(sim, scenario())
        assert a == b  # never a torn pair

    def test_write_spanning_blocks(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            data = bytes(range(256)) * 12  # 3072 bytes across 4 blocks
            yield from coord.repmem.write(BASE + 900, data)
            return (yield from coord.repmem.read(BASE + 900, len(data))) == data

        assert run(sim, scenario())

    def test_out_of_range_rejected(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            try:
                yield from coord.repmem.write(128 * 1024 - 2, b"xxxx")
            except InvalidAccess:
                return "rejected"

        assert run(sim, scenario()) == "rejected"

    def test_direct_write_and_read(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.direct_write(BASE + 64, b"unlogged")
            data = yield from coord.repmem.direct_read(BASE + 64, 8)
            logged_before = coord.repmem.stats["entries_logged"]
            return data, logged_before

        data, logged = run(sim, scenario())
        assert data == b"unlogged"
        # Only the membership commit was logged; the direct write was not.
        assert logged <= 2

    def test_concurrent_writers_disjoint_addresses(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem

            def writer(index):
                for round_number in range(10):
                    yield from rm.write(BASE + index * 2048, bytes([round_number]) * 100)

            workers = [coord.host.spawn(writer(i)) for i in range(8)]
            for worker in workers:
                yield worker
            reads = []
            for index in range(8):
                reads.append((yield from rm.read(BASE + index * 2048, 100)))
            return reads

        assert run(sim, scenario()) == [bytes([9]) * 100] * 8


class TestWalFlowControl:
    def test_writer_stalls_until_applies_catch_up(self):
        """The circular WAL bounds in-flight writes (§3.3.2 / §4.2)."""
        sim, _fabric, group = make_group(wal_entries=16)

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem
            for round_number in range(100):  # far more than WAL capacity
                yield from rm.write(BASE + (round_number % 8) * 1024, b"x" * 512)
            assert rm.next_index - rm.applied_floor() <= 16 + 1
            return (yield from rm.read(BASE, 1))

        run(sim, scenario())


class TestNodeFailureHandling:
    def test_writes_survive_one_node_death(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            group.crash_memory_node(2)
            for round_number in range(10):
                yield from coord.repmem.write(BASE + round_number * 1024, b"ok")
            yield sim.timeout(5 * MS)  # verb timeouts mark the node dead
            assert coord.repmem.states[2] == "dead"
            assert 2 not in coord.repmem.membership.members
            return (yield from coord.repmem.read(BASE, 2))

        assert run(sim, scenario()) == b"ok"

    def test_quorum_loss_fails_writes(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            group.crash_memory_node(1)
            group.crash_memory_node(2)
            try:
                for _ in range(5):
                    yield from coord.repmem.write(BASE, b"doomed")
                    yield sim.timeout(2 * MS)
            except Exception as exc:
                return type(exc).__name__
            return "no error"

        result = run(sim, scenario())
        assert result in ("GroupUnavailable", "QuorumError", "Deposed")

    def test_write_locks_not_stranded_by_node_death(self):
        """Regression: a node dying mid-apply must release write locks."""
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem
            yield from rm.write(BASE, b"first")
            group.crash_memory_node(0)
            yield from rm.write(BASE, b"second")  # may be mid-apply at crash
            yield sim.timeout(5 * MS)
            # A third write to the same block must not deadlock.
            yield from rm.write(BASE, b"third")
            return (yield from rm.read(BASE, 5))

        assert run(sim, scenario()) == b"third"


class TestErasureCodedPath:
    def make_ec(self):
        return make_group(
            erasure_coding=True, direct_bytes=8 * 1024, data_bytes=128 * 1024
        )

    def test_full_block_write_roundtrip(self):
        sim, _fabric, group = self.make_ec()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.write(16 * 1024, b"E" * 1024)
            return (yield from coord.repmem.read(16 * 1024, 1024))

        assert run(sim, scenario()) == b"E" * 1024

    def test_partial_write_promoted_via_rmw(self):
        sim, _fabric, group = self.make_ec()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem
            yield from rm.write(16 * 1024, b"A" * 1024)
            yield from rm.write(16 * 1024 + 10, b"BB")
            assert rm.stats["rmw_promotions"] >= 1
            return (yield from rm.read(16 * 1024 + 8, 6))

        assert run(sim, scenario()) == b"AABBAA"

    def test_chunks_stored_not_full_replicas(self):
        sim, _fabric, group = self.make_ec()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem
            yield from rm.write(16 * 1024, b"Z" * 1024)
            while rm.applied_floor() < rm.next_index - 1:
                yield sim.timeout(1 * MS)
            block = rm.amap.block_index(16 * 1024)
            offset = rm.amap.chunk_extent(block)
            chunk_bytes = rm.config.chunk_bytes
            shards = [
                node.repmem_region.read(offset, chunk_bytes)
                for node in group.memory_nodes
            ]
            return shards

        shards = run(sim, scenario())
        # Data shards hold halves of the block; the parity shard differs.
        assert shards[0] == b"Z" * 512
        assert shards[1] == b"Z" * 512
        assert shards[2] != b"Z" * 512  # parity

    def test_degraded_read_uses_parity(self):
        sim, _fabric, group = self.make_ec()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem
            yield from rm.write(16 * 1024, b"Q" * 1024)
            group.crash_memory_node(0)  # a data-shard node
            yield sim.timeout(3 * MS)
            data = yield from rm.read(16 * 1024, 1024)
            return data, rm.stats["ec_decodes"]

        data, decodes = run(sim, scenario())
        assert data == b"Q" * 1024
        assert decodes >= 1

    def test_direct_writes_restricted_to_window(self):
        sim, _fabric, group = self.make_ec()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            try:
                yield from coord.repmem.direct_write(32 * 1024, b"nope")
            except InvalidAccess:
                return "rejected"

        assert run(sim, scenario()) == "rejected"

    def test_node_memory_footprint_reduced(self):
        _sim, _fabric, group = self.make_ec()
        plain = SiftConfig(fm=1, fc=1, data_bytes=128 * 1024, wal_entries=128)
        assert group.config.node_data_bytes < plain.node_data_bytes
