"""Property tests for the recovery partition planner.

The planner is pure arithmetic, so these tests pin its invariants over
arbitrary geometry: every byte of the image belongs to exactly one
fragment of exactly one partition, fragments respect the direct-zone
boundary, and partition boundaries land on the block-lock grid whenever
the fragment grid allows it.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core.partition import plan_fragments, plan_partitions

# Geometry strategy: sizes up to a few MiB keep runs fast while still
# exercising non-divisible chunk/data/partition combinations.
data_bytes_st = st.integers(min_value=0, max_value=4 * 1024 * 1024)
chunk_bytes_st = st.integers(min_value=1, max_value=256 * 1024)
partitions_st = st.integers(min_value=1, max_value=64)
block_bytes_st = st.integers(min_value=1, max_value=8 * 1024)


@st.composite
def geometry(draw):
    data = draw(data_bytes_st)
    chunk = draw(chunk_bytes_st)
    direct = draw(st.integers(min_value=0, max_value=data))
    return data, chunk, direct


class TestPlanFragments:
    @given(geometry())
    @settings(max_examples=200, deadline=None)
    def test_fragments_tile_the_image_exactly(self, geom):
        data, chunk, direct = geom
        fragments = plan_fragments(data, chunk, direct)
        cursor = 0
        for addr, length in fragments:
            assert addr == cursor, "gap or overlap between fragments"
            assert length > 0
            cursor = addr + length
        assert cursor == data

    @given(geometry())
    @settings(max_examples=200, deadline=None)
    def test_fragments_never_straddle_the_direct_boundary(self, geom):
        data, chunk, direct = geom
        for addr, length in plan_fragments(data, chunk, direct):
            assert not (addr < direct < addr + length)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            plan_fragments(1024, 0)
        with pytest.raises(ValueError):
            plan_fragments(-1, 64)
        with pytest.raises(ValueError):
            plan_fragments(1024, 64, direct_bytes=2048)


class TestPlanPartitions:
    @given(geometry(), partitions_st, block_bytes_st)
    @settings(max_examples=200, deadline=None)
    def test_every_byte_in_exactly_one_partition(self, geom, partitions, block):
        data, chunk, direct = geom
        plan = plan_partitions(data, chunk, partitions, direct, block)
        assert len(plan) == partitions
        cursor = 0
        for part in plan:
            assert part.start == cursor, "partitions must be contiguous"
            assert part.end >= part.start
            frag_cursor = part.start
            for addr, length in part.fragments:
                assert addr == frag_cursor
                frag_cursor = addr + length
            assert frag_cursor == part.end
            assert part.total_bytes == part.end - part.start
            cursor = part.end
        assert cursor == data, "partitions must cover the whole image"

    @given(geometry(), partitions_st, block_bytes_st)
    @settings(max_examples=200, deadline=None)
    def test_boundaries_snap_to_the_block_grid(self, geom, partitions, block):
        data, chunk, direct = geom
        plan = plan_partitions(data, chunk, partitions, direct, block)
        for part in plan[:-1]:
            # Interior boundaries are block-aligned unless the image
            # itself ends the partition (the planner absorbs fragments
            # forward until the boundary lands on the grid).
            assert part.end % block == 0 or part.end == data

    @given(st.integers(min_value=1, max_value=8), partitions_st)
    @settings(max_examples=100, deadline=None)
    def test_more_partitions_than_fragments_yields_empty_tails(
        self, fragment_count, partitions
    ):
        chunk = 64
        data = fragment_count * chunk
        plan = plan_partitions(data, chunk, partitions)
        non_empty = [p for p in plan if p.fragments]
        assert len(non_empty) == min(fragment_count, partitions)
        for part in plan:
            if not part.fragments:
                assert part.start == part.end == data

    @given(geometry(), partitions_st)
    @settings(max_examples=100, deadline=None)
    def test_partitions_one_matches_the_flat_plan(self, geom, partitions):
        data, chunk, direct = geom
        flat = plan_fragments(data, chunk, direct)
        plan = plan_partitions(data, chunk, 1, direct)
        assert list(plan[0].fragments) == flat

    def test_rejects_bad_partition_count(self):
        with pytest.raises(ValueError):
            plan_partitions(1024, 64, 0)
        with pytest.raises(ValueError):
            plan_partitions(1024, 64, 2, block_bytes=0)
