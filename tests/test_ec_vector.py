"""Scalar-vs-vector equivalence for the GF(2^8) kernels.

The vectorised kernels in ``repro.ec`` (MUL product table, table-driven
``gf_matmul``/``gf_mat_inv``/``cauchy_matrix``) must agree bit-for-bit
with straightforward scalar field arithmetic.  The scalar reference here
is a schoolbook carry-less multiply reduced mod 0x11D — deliberately
independent of the exp/log tables it checks.
"""

import random

import numpy as np
import pytest

from repro.ec.gf256 import MUL, gf_inv, gf_mul, gf_mul_vec
from repro.ec.matrix import cauchy_matrix, gf_mat_inv, gf_matmul, identity
from repro.ec.reed_solomon import CauchyRSCode

_POLY = 0x11D


def scalar_mul(a: int, b: int) -> int:
    """Schoolbook GF(2^8) multiply: shift-and-xor, reduce mod 0x11D."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= _POLY
    return result


def scalar_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for i in range(a.shape[0]):
        for j in range(b.shape[1]):
            acc = 0
            for t in range(a.shape[1]):
                acc ^= scalar_mul(int(a[i, t]), int(b[t, j]))
            out[i, j] = acc
    return out


class TestProductTable:
    def test_mul_table_exhaustive(self):
        """All 65536 products match the schoolbook reference."""
        for a in range(256):
            row = MUL[a]
            for b in range(256):
                assert int(row[b]) == scalar_mul(a, b)

    def test_gf_mul_uses_same_field(self):
        rng = random.Random(11)
        for _ in range(500):
            a, b = rng.randrange(256), rng.randrange(256)
            assert gf_mul(a, b) == scalar_mul(a, b)

    def test_table_is_read_only(self):
        with pytest.raises(ValueError):
            MUL[1, 1] = 0


class TestVectorKernels:
    def test_gf_mul_vec_matches_scalar(self):
        rng = random.Random(23)
        vec = np.frombuffer(
            bytes(rng.randrange(256) for _ in range(4096)), dtype=np.uint8
        )
        for scalar in (0, 1, 2, 37, 255, rng.randrange(256)):
            got = gf_mul_vec(scalar, vec)
            want = np.array([scalar_mul(scalar, int(v)) for v in vec], dtype=np.uint8)
            assert np.array_equal(got, want)

    def test_matmul_random_blocks(self):
        rng = random.Random(31)
        for _ in range(10):
            n, k, m = rng.randint(1, 6), rng.randint(1, 6), rng.randint(1, 128)
            a = np.array(
                [[rng.randrange(256) for _ in range(k)] for _ in range(n)],
                dtype=np.uint8,
            )
            b = np.array(
                [[rng.randrange(256) for _ in range(m)] for _ in range(k)],
                dtype=np.uint8,
            )
            assert np.array_equal(gf_matmul(a, b), scalar_matmul(a, b))

    def test_matmul_zero_and_identity(self):
        rng = random.Random(37)
        b = np.array(
            [[rng.randrange(256) for _ in range(64)] for _ in range(4)],
            dtype=np.uint8,
        )
        assert np.array_equal(gf_matmul(identity(4), b), b)
        zero = np.zeros((3, 4), dtype=np.uint8)
        assert np.array_equal(gf_matmul(zero, b), np.zeros((3, 64), dtype=np.uint8))

    def test_mat_inv_round_trip(self):
        for k in (1, 2, 3, 5, 8, 13):
            m = cauchy_matrix(k, k)
            inv = gf_mat_inv(m)
            assert np.array_equal(gf_matmul(m, inv), identity(k))
            assert np.array_equal(gf_matmul(inv, m), identity(k))

    def test_mat_inv_singular_raises(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            gf_mat_inv(singular)

    def test_cauchy_matches_scalar_definition(self):
        for rows, cols in ((1, 1), (2, 3), (3, 2), (5, 8)):
            got = cauchy_matrix(rows, cols)
            for i in range(rows):
                for j in range(cols):
                    assert int(got[i, j]) == gf_inv(i ^ (rows + j))


class TestDecodePaths:
    """End-to-end: parity-assisted decode exercises inv + matmul."""

    @pytest.mark.parametrize("k,m", [(2, 2), (3, 2), (2, 1), (4, 3)])
    def test_round_trip_from_every_k_subset(self, k, m):
        rng = random.Random(41 + k * 10 + m)
        code = CauchyRSCode(k, m)
        block = bytes(rng.randrange(256) for _ in range(k * 31 + 7))
        chunks = code.encode(block)
        import itertools

        for subset in itertools.combinations(range(k + m), k):
            picked = {i: chunks[i] for i in subset}
            assert code.decode(picked, len(block)) == block

    def test_reconstruct_rebuilds_all_shards(self):
        rng = random.Random(43)
        code = CauchyRSCode(3, 2)
        block = bytes(rng.randrange(256) for _ in range(300))
        chunks = code.encode(block)
        rebuilt = code.reconstruct({0: chunks[0], 2: chunks[2], 4: chunks[4]}, 300)
        assert rebuilt == chunks
