"""Unit tests for WAL merge rules (the Raft-style divergence handling)."""

from repro.kv.layout import OP_PUT, WalRecord
from repro.kv.store import merge_wal_records


def rec(seq, term, value=b"v", key=b"k"):
    return WalRecord(seq, OP_PUT, key, value, term)


class TestKvWalMerge:
    def test_union_of_disjoint_nodes(self):
        a = {1: rec(1, 1), 3: rec(3, 1)}
        b = {2: rec(2, 1)}
        merged = merge_wal_records([a, b], floor_seq=0)
        assert [r.seq for r in merged] == [1, 2, 3]

    def test_floor_excludes_applied_prefix(self):
        records = {i: rec(i, 1) for i in range(1, 10)}
        merged = merge_wal_records([records], floor_seq=6)
        assert [r.seq for r in merged] == [7, 8, 9]

    def test_higher_term_wins_at_same_seq(self):
        stale = {5: rec(5, 1, b"stale")}
        fresh = {5: rec(5, 2, b"fresh")}
        merged = merge_wal_records([stale, fresh], floor_seq=0)
        assert merged == [rec(5, 2, b"fresh")]
        # Order of the node list must not matter.
        merged2 = merge_wal_records([fresh, stale], floor_seq=0)
        assert merged2 == merged

    def test_stale_suffix_beyond_newest_term_truncated(self):
        """A deposed coordinator's records past the successor's last
        sequence must be dropped, not resurrected."""
        deposed = {1: rec(1, 1), 2: rec(2, 1), 3: rec(3, 1), 4: rec(4, 1)}
        successor = {1: rec(1, 1), 2: rec(2, 2)}
        merged = merge_wal_records([deposed, successor], floor_seq=0)
        assert [(r.seq, r.term) for r in merged] == [(1, 1), (2, 2)]

    def test_empty_inputs(self):
        assert merge_wal_records([], floor_seq=0) == []
        assert merge_wal_records([{}, {}], floor_seq=0) == []

    def test_single_node_passthrough(self):
        records = {1: rec(1, 3), 2: rec(2, 3)}
        merged = merge_wal_records([records], floor_seq=0)
        assert [r.seq for r in merged] == [1, 2]

    def test_gap_in_sequences_preserved_up_to_last(self):
        """Gaps (uncommitted holes) do not block later records."""
        records = {1: rec(1, 1), 4: rec(4, 1)}
        merged = merge_wal_records([records], floor_seq=0)
        assert [r.seq for r in merged] == [1, 4]

    def test_mixed_terms_interleaved(self):
        node_a = {1: rec(1, 1), 2: rec(2, 1), 3: rec(3, 3)}
        node_b = {2: rec(2, 2), 3: rec(3, 1), 5: rec(5, 2)}
        merged = merge_wal_records([node_a, node_b], floor_seq=0)
        # Max term overall is 3 at seq 3 -> keep seqs <= 3, max term per seq.
        assert [(r.seq, r.term) for r in merged] == [(1, 1), (2, 2), (3, 3)]
