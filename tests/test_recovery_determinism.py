"""Determinism guarantees around partitioned recovery (satellite of the
fig11sweep work).

Three layers:

* the committed ``BENCH_fig11sweep`` baseline's anchor point — which ran
  through the new ``recovery_partitions`` dispatch at ``partitions=1`` —
  is byte-identical to the committed ``BENCH_fig11`` figure, proving the
  knob's default reproduces the single-path numbers exactly;
* the committed sweep itself satisfies the CI gate's shape (strictly
  decreasing recovery time, precise values within the poll-quantised
  ones);
* the run helper behind both figures is replay-deterministic: the same
  seed and geometry produce the identical timeline, twice, in-process.

The in-process runs use tiny timings so this file stays tier-1 fast.
"""

import json
import pathlib

from repro.bench.calibration import BenchScale
from repro.bench.points import (
    RECOVERY_SWEEP_PARTITIONS,
    _memnode_failure_run,
)
from repro.sim.units import MS

BASELINES = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"

# Small enough to run in seconds, long enough that the node dies, is
# detected (the recovery poller ticks every 500 ms), and the copy-back
# completes inside the window.
MINI_TIMINGS = (60 * MS, 90 * MS, 800 * MS, 3)


def _mini_scale() -> BenchScale:
    return BenchScale(
        keys=2048,
        warmup_us=10 * MS,
        measure_us=20 * MS,
        clients=6,
        wal_entries=2048,
        kv_wal_entries=4096,
    )


class TestCommittedArtifacts:
    def _load(self, name):
        with open(BASELINES / name) as fh:
            return json.load(fh)

    def test_sweep_anchor_is_byte_identical_to_fig11(self):
        fig11 = self._load("BENCH_fig11.json")
        sweep = self._load("BENCH_fig11sweep.json")
        anchor = sweep["simulated"]["sift/memnode-failure"]
        single = fig11["simulated"]
        assert json.dumps(anchor, sort_keys=True) == json.dumps(
            single, sort_keys=True
        ), "partitions=1 no longer reproduces the single-path fig11 numbers"

    def test_sweep_recovery_time_strictly_decreases(self):
        sweep = self._load("BENCH_fig11sweep.json")
        partitions = sweep["params"]["partitions"]
        assert partitions == sorted(partitions)
        times = [
            sweep["simulated"][f"sift/recovery-f2-p{p}"]["recovery_s"]
            for p in partitions
        ]
        assert all(a > b for a, b in zip(times, times[1:])), times

    def test_precise_recovery_within_poll_quantised(self):
        # recovery_s comes from the copy's exact finish timestamp;
        # recovery_poll_s from the 10ms bench watcher.  The poll can only
        # observe the recovery late, never early.
        sweep = self._load("BENCH_fig11sweep.json")
        for p in sweep["params"]["partitions"]:
            point = sweep["simulated"][f"sift/recovery-f2-p{p}"]
            assert point["recovery_s"] <= point["recovery_poll_s"] + 1e-9
            assert point["recovery_poll_s"] - point["recovery_s"] < 0.05

    def test_sweep_copies_the_whole_image_at_every_width(self):
        sweep = self._load("BENCH_fig11sweep.json")
        sizes = {
            sweep["simulated"][f"sift/recovery-f2-p{p}"]["copy_bytes"]
            for p in sweep["params"]["partitions"]
        }
        assert len(sizes) == 1, f"partition widths copied different images: {sizes}"


class TestRunHelperDeterminism:
    def test_same_seed_same_timeline(self):
        runs = [
            _memnode_failure_run(
                True,
                _mini_scale(),
                seed=7,
                f=1,
                recovery_partitions=2,
                timings=MINI_TIMINGS,
            )
            for _ in range(2)
        ]
        first, second = (json.dumps(run, sort_keys=True) for run in runs)
        assert first == second
        assert runs[0]["recovery_s"] is not None  # the timeline was not degenerate

    def test_partition_widths_share_the_failure_schedule(self):
        # Different widths change HOW the copy-back runs, not WHAT the
        # failure timeline is: the kill and restart events must line up
        # exactly, and every width must complete its recovery.
        runs = {
            p: _memnode_failure_run(
                True,
                _mini_scale(),
                seed=7,
                f=1,
                recovery_partitions=p,
                timings=MINI_TIMINGS,
            )
            for p in (1, 2)
        }
        assert runs[1]["events"] == runs[2]["events"]
        for p, run in runs.items():
            assert run["recovery_s"] is not None, f"p={p} never recovered"
            assert run["copy"]["bytes"] == runs[1]["copy"]["bytes"]
        assert runs[1]["copy"]["partitions"] == 1
        assert runs[2]["copy"]["partitions"] == 2

    def test_sweep_constant_covers_committed_baseline(self):
        with open(BASELINES / "BENCH_fig11sweep.json") as fh:
            sweep = json.load(fh)
        assert list(RECOVERY_SWEEP_PARTITIONS) == sweep["params"]["partitions"]
