"""KV store tests (§4): data path, chains, recovery, and a model-based
property test against a plain dict."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SiftGroup
from repro.kv import KvClient, KvConfig, kv_app_factory
from repro.net import Fabric
from repro.sim import MS, SEC, Simulator


def make_stack(ec=False, kv_overrides=None, sift_overrides=None):
    sim = Simulator()
    fabric = Fabric(sim)
    kv_kwargs = dict(max_keys=512, wal_entries=128, watermark_interval=32)
    kv_kwargs.update(kv_overrides or {})
    kv_config = KvConfig(**kv_kwargs)
    sift_kwargs = dict(fm=1, fc=1, erasure_coding=ec, wal_entries=256)
    sift_kwargs.update(sift_overrides or {})
    sift_config = kv_config.sift_config(**sift_kwargs)
    group = SiftGroup(fabric, sift_config, name="kv", app_factory=kv_app_factory(kv_config))
    group.start()
    client = KvClient(fabric.add_host("client", cores=4), fabric, group)
    return sim, fabric, group, client


def run(sim, gen, until=60 * SEC):
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled, "scenario did not finish"
    if process.failed:
        raise process.exception
    return process.value


class TestDataPath:
    def test_put_get(self):
        sim, _f, group, client = make_stack()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from client.put(b"k", b"v")
            return (yield from client.get(b"k"))

        assert run(sim, scenario()) == b"v"

    def test_get_missing_returns_none(self):
        sim, _f, group, client = make_stack()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            return (yield from client.get(b"nothing"))

        assert run(sim, scenario()) is None

    def test_overwrite(self):
        sim, _f, group, client = make_stack()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from client.put(b"k", b"v1")
            yield from client.put(b"k", b"v2")
            return (yield from client.get(b"k"))

        assert run(sim, scenario()) == b"v2"

    def test_delete(self):
        sim, _f, group, client = make_stack()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from client.put(b"k", b"v")
            yield from client.delete(b"k")
            return (yield from client.get(b"k"))

        assert run(sim, scenario()) is None

    def test_delete_missing_is_idempotent(self):
        sim, _f, group, client = make_stack()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from client.delete(b"ghost")
            yield from client.delete(b"ghost")
            return True

        assert run(sim, scenario())

    def test_empty_value(self):
        sim, _f, group, client = make_stack()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from client.put(b"k", b"")
            return (yield from client.get(b"k"))

        assert run(sim, scenario()) == b""

    def test_max_sized_record(self):
        sim, _f, group, client = make_stack()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            key = b"K" * 32
            value = b"V" * 992
            yield from client.put(key, value)
            return (yield from client.get(key))

        assert run(sim, scenario()) == b"V" * 992

    def test_oversized_key_rejected(self):
        sim, _f, group, client = make_stack()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            try:
                yield from client.put(b"K" * 33, b"v")
            except Exception:
                return "rejected"
            return "accepted"

        assert run(sim, scenario()) == "rejected"

    def test_many_keys(self):
        sim, _f, group, client = make_stack()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            for index in range(200):
                yield from client.put(b"key-%03d" % index, b"val-%03d" % index)
            for index in (0, 57, 123, 199):
                value = yield from client.get(b"key-%03d" % index)
                assert value == b"val-%03d" % index, index
            return True

        assert run(sim, scenario())

    def test_get_after_applies_drain(self):
        """Values remain correct after the WAL has been fully applied."""
        sim, _f, group, client = make_stack()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from client.put(b"k", b"final")
            server = group.serving_coordinator().app
            while server.applied_seq < server.next_seq - 1:
                yield sim.timeout(1 * MS)
            # Evict nothing; read via chain by clearing the cache entry.
            server.cache._entries.clear()
            return (yield from client.get(b"k"))

        assert run(sim, scenario()) == b"final"


class TestChains:
    def test_colliding_keys_chain_correctly(self):
        """Force many keys into one bucket and verify chain traversal."""
        sim, _f, group, client = make_stack(kv_overrides=dict(max_keys=64))

        def scenario():
            coordinator = yield from group.wait_until_serving(timeout_us=2 * SEC)
            server = coordinator.app
            layout = server.layout
            # Find keys that collide in one bucket.
            target = layout.bucket_of(b"seed")
            colliding = [b"seed"]
            probe = 0
            while len(colliding) < 5:
                key = b"probe-%d" % probe
                if layout.bucket_of(key) == target:
                    colliding.append(key)
                probe += 1
            for index, key in enumerate(colliding):
                yield from client.put(key, b"value-%d" % index)
            server.cache._entries.clear()  # force chain walks
            values = []
            for key in colliding:
                values.append((yield from client.get(key)))
            return values

        values = run(sim, scenario())
        assert values == [b"value-%d" % index for index in range(5)]

    def test_delete_middle_of_chain(self):
        sim, _f, group, client = make_stack(kv_overrides=dict(max_keys=64))

        def scenario():
            coordinator = yield from group.wait_until_serving(timeout_us=2 * SEC)
            server = coordinator.app
            layout = server.layout
            target = layout.bucket_of(b"anchor")
            colliding = [b"anchor"]
            probe = 0
            while len(colliding) < 4:
                key = b"p-%d" % probe
                if layout.bucket_of(key) == target:
                    colliding.append(key)
                probe += 1
            for key in colliding:
                yield from client.put(key, b"v:" + key)
            yield from client.delete(colliding[2])
            server.cache._entries.clear()
            values = []
            for key in colliding:
                values.append((yield from client.get(key)))
            return values

        values = run(sim, scenario())
        assert values[2] is None
        assert values[0] == b"v:anchor"
        assert values[1] is not None and values[3] is not None

    def test_block_reuse_after_delete(self):
        sim, _f, group, client = make_stack(kv_overrides=dict(max_keys=64))

        def scenario():
            coordinator = yield from group.wait_until_serving(timeout_us=2 * SEC)
            server = coordinator.app
            for index in range(60):
                yield from client.put(b"fill-%02d" % index, b"x")
            while server.applied_seq < server.next_seq - 1:
                yield sim.timeout(1 * MS)
            free_before = server._free_blocks
            for index in range(30):
                yield from client.delete(b"fill-%02d" % index)
            while server.applied_seq < server.next_seq - 1:
                yield sim.timeout(1 * MS)
            assert server._free_blocks == free_before + 30
            # The freed blocks are usable again.
            for index in range(25):
                yield from client.put(b"new-%02d" % index, b"y")
            return (yield from client.get(b"new-03"))

        assert run(sim, scenario()) == b"y"

    def test_store_full(self):
        sim, _f, group, client = make_stack(kv_overrides=dict(max_keys=8))

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            outcomes = []
            for index in range(12):
                try:
                    yield from client.put(b"k%02d" % index, b"v")
                    outcomes.append("ok")
                except Exception:
                    outcomes.append("full")
            return outcomes

        outcomes = run(sim, scenario())
        assert "full" in outcomes
        assert outcomes[:8].count("ok") == 8


class TestRecovery:
    def test_failover_preserves_all_operations(self):
        sim, _f, group, client = make_stack()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            for index in range(50):
                yield from client.put(b"k%02d" % index, b"v%02d" % index)
            yield from client.delete(b"k10")
            yield from client.put(b"k11", b"updated")
            group.crash_coordinator()
            values = []
            for key, expect in ((b"k09", b"v09"), (b"k10", None), (b"k11", b"updated")):
                values.append((yield from client.get(key)))
            return values

        assert run(sim, scenario()) == [b"v09", None, b"updated"]

    def test_watermark_bounds_replay(self):
        sim, _f, group, client = make_stack(kv_overrides=dict(watermark_interval=8))

        def scenario():
            coordinator = yield from group.wait_until_serving(timeout_us=2 * SEC)
            for index in range(40):
                yield from client.put(b"k%02d" % index, b"v")
            server = coordinator.app
            while server.applied_seq < server.next_seq - 1:
                yield sim.timeout(1 * MS)
            yield sim.timeout(5 * MS)
            coordinator.crash()
            successor = yield from group.wait_until_serving(timeout_us=5 * SEC)
            return successor.app.stats["replayed"]

        replayed = run(sim, scenario())
        # With the watermark persisted every 8 applies, replay is a small
        # suffix, never the whole history.
        assert replayed <= 24

    def test_kv_process_restart_without_coordinator_change(self):
        """§4.3: the KV layer recovers independently of the consensus layer."""
        sim, _f, group, client = make_stack()

        def scenario():
            coordinator = yield from group.wait_until_serving(timeout_us=2 * SEC)
            for index in range(30):
                yield from client.put(b"k%02d" % index, b"v%02d" % index)
            old_server = coordinator.app
            old_server.stop()
            # A fresh KV process on the same coordinator recovers from
            # replicated memory alone.
            from repro.kv.store import KvServer

            new_server = KvServer(
                coordinator, coordinator.repmem, old_server.config, old_server.endpoint
            )
            coordinator.app = new_server
            yield coordinator.host.spawn(new_server.start())
            return (yield from client.get(b"k17"))

        assert run(sim, scenario()) == b"v17"

    def test_ec_mode_full_stack(self):
        sim, _f, group, client = make_stack(ec=True)

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            for index in range(30):
                yield from client.put(b"e%02d" % index, b"val-%02d" % index * 8)
            group.crash_coordinator()
            value = yield from client.get(b"e15")
            return value

        assert run(sim, scenario()) == b"val-15" * 8


class TestModelBased:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "delete"]),
                st.integers(0, 15),
                st.binary(min_size=1, max_size=32),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_matches_dict_semantics(self, ops):
        """The replicated store behaves exactly like a dict."""
        sim, _f, group, client = make_stack()
        model = {}

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            for op, key_id, value in ops:
                key = b"key-%02d" % key_id
                if op == "put":
                    yield from client.put(key, value)
                    model[key] = value
                elif op == "delete":
                    yield from client.delete(key)
                    model.pop(key, None)
                else:
                    got = yield from client.get(key)
                    assert got == model.get(key), (op, key, got, model.get(key))
            # Final read-back of every key ever touched.
            for key_id in range(16):
                key = b"key-%02d" % key_id
                got = yield from client.get(key)
                assert got == model.get(key), (key, got, model.get(key))
            return True

        assert run(sim, scenario())
