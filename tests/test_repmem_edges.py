"""Edge cases of the replicated memory API."""


from repro.core import SiftConfig, SiftGroup
from repro.core.errors import InvalidAccess
from repro.core.membership import RESERVED_BYTES
from repro.net import Fabric
from repro.sim import MS, SEC, Simulator

BASE = RESERVED_BYTES


def make_group(**overrides):
    sim = Simulator()
    fabric = Fabric(sim)
    defaults = dict(fm=1, fc=1, data_bytes=64 * 1024, wal_entries=64)
    defaults.update(overrides)
    group = SiftGroup(fabric, SiftConfig(**defaults), name="edge")
    group.start()
    return sim, fabric, group


def run(sim, gen, until=30 * SEC):
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled, "scenario did not finish"
    if process.failed:
        raise process.exception
    return process.value


class TestEdgeCases:
    def test_zero_length_read(self):
        sim, _f, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            return (yield from coord.repmem.read(BASE, 0))

        assert run(sim, scenario()) == b""

    def test_empty_write_commits(self):
        sim, _f, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.write(BASE, b"")
            return True

        assert run(sim, scenario())

    def test_write_at_last_byte(self):
        sim, _f, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.write(64 * 1024 - 1, b"Z")
            return (yield from coord.repmem.read(64 * 1024 - 1, 1))

        assert run(sim, scenario()) == b"Z"

    def test_negative_read_rejected(self):
        sim, _f, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            try:
                yield from coord.repmem.read(-4, 4)
            except InvalidAccess:
                return "rejected"

        assert run(sim, scenario()) == "rejected"

    def test_multi_write_many_blocks(self):
        sim, _f, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            writes = [(BASE + index * 1024, bytes([index]) * 16) for index in range(12)]
            yield from coord.repmem.multi_write(writes)
            out = []
            for index in range(12):
                out.append((yield from coord.repmem.read(BASE + index * 1024, 16)))
            return out

        out = run(sim, scenario())
        assert out == [bytes([index]) * 16 for index in range(12)]

    def test_multi_write_empty_list(self):
        sim, _f, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.multi_write([])
            return True

        assert run(sim, scenario())

    def test_interleaved_reads_and_writes_same_block(self):
        sim, _f, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem
            results = []

            def writer():
                for value in range(20):
                    yield from rm.write(BASE, bytes([value]) * 8)

            def reader():
                for _ in range(20):
                    data = yield from rm.read(BASE, 8)
                    results.append(data)

            w = coord.host.spawn(writer())
            r = coord.host.spawn(reader())
            yield w
            yield r
            return results

        results = run(sim, scenario())
        # Every read observes a whole write, never a torn one.
        for data in results:
            assert len(set(data)) <= 1

    def test_stats_counters_move(self):
        sim, _f, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem
            yield from rm.write(BASE, b"x" * 100)
            yield from rm.read(BASE, 100)
            return dict(rm.stats)

        stats = run(sim, scenario())
        assert stats["writes_committed"] >= 1
        assert stats["entries_logged"] >= 1
        assert stats["remote_reads"] >= 1
        assert stats["applies_posted"] >= 1

    def test_fm2_group_end_to_end(self):
        sim, _f, group = make_group(fm=2)

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.write(BASE, b"five-nodes")
            return (yield from coord.repmem.read(BASE, 10))

        assert run(sim, scenario()) == b"five-nodes"

    def test_fm2_ec_chunking(self):
        sim, _f, group = make_group(
            fm=2, erasure_coding=True, direct_bytes=8 * 1024, data_bytes=128 * 1024
        )

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=3 * SEC)
            rm = coord.repmem
            yield from rm.write(16 * 1024, b"W" * 1024)
            # Two failures tolerated with Fm=2.
            group.crash_memory_node(0)
            group.crash_memory_node(3)
            yield sim.timeout(5 * MS)
            return (yield from rm.read(16 * 1024, 1024))

        assert run(sim, scenario()) == b"W" * 1024
