"""Recovery tests (§3.4): log recovery, node recovery, trust handling."""


from repro.core import SiftConfig, SiftGroup
from repro.core.membership import RESERVED_BYTES
from repro.core.replicated_memory import NodeState
from repro.net import Fabric
from repro.sim import MS, SEC, Simulator
from repro.storage.wal import WalCodec, WalEntry

BASE = RESERVED_BYTES


def make_group(**overrides):
    sim = Simulator()
    fabric = Fabric(sim)
    defaults = dict(
        fm=1,
        fc=1,
        data_bytes=64 * 1024,
        wal_entries=64,
        memnode_poll_interval_us=20 * MS,
    )
    defaults.update(overrides)
    group = SiftGroup(fabric, SiftConfig(**defaults), name="r")
    group.start()
    return sim, fabric, group


def run(sim, gen, until=60 * SEC):
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled, "scenario did not finish"
    if process.failed:
        raise process.exception
    return process.value


class TestCoordinatorRecovery:
    def test_committed_writes_survive_failover(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            for index in range(20):
                yield from coord.repmem.write(BASE + index * 512, b"v%02d" % index)
            coord.crash()
            successor = yield from group.wait_until_serving(timeout_us=3 * SEC)
            values = []
            for index in range(20):
                values.append((yield from successor.repmem.read(BASE + index * 512, 3)))
            return values

        values = run(sim, scenario())
        assert values == [b"v%02d" % index for index in range(20)]

    def test_log_index_continues_after_recovery(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            for _ in range(10):
                yield from coord.repmem.write(BASE, b"x")
            old_next = coord.repmem.next_index
            coord.crash()
            successor = yield from group.wait_until_serving(timeout_us=3 * SEC)
            return old_next, successor.repmem.next_index

        old_next, new_next = run(sim, scenario())
        assert new_next >= old_next

    def test_repeated_failovers_preserve_data(self):
        sim, _fabric, group = make_group(fc=2)

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.write(BASE, b"durable")
            for _round in range(3):
                coordinator = group.serving_coordinator()
                coordinator.crash()
                coordinator.restart()
                coordinator = yield from group.wait_until_serving(timeout_us=5 * SEC)
            return (yield from coordinator.repmem.read(BASE, 7))

        assert run(sim, scenario()) == b"durable"

    def test_divergent_minority_suffix_discarded(self):
        """A deposed coordinator's unacked entries on one node must not
        override the successor's log (the term rule, §3.4.1)."""
        sim, fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.write(BASE, b"committed")
            # Fabricate a divergent uncommitted suffix on memory node 0, as
            # if a stale coordinator kept writing to it alone: same index
            # range, OLDER term.
            node = group.memory_nodes[0]
            repmem = coord.repmem
            stale_index = repmem.next_index
            stale_entry = WalEntry(stale_index, BASE, b"stale!!!!", term=0)
            codec = WalCodec(repmem.wal_layout)
            node.repmem_region.write(
                repmem.wal_layout.slot_offset(stale_index), codec.encode(stale_entry)
            )
            coord.crash()
            successor = yield from group.wait_until_serving(timeout_us=3 * SEC)
            return (yield from successor.repmem.read(BASE, 9))

        assert run(sim, scenario()) == b"committed"

    def test_higher_term_entry_wins_at_same_index(self):
        sim, fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.write(BASE, b"old-value")
            # The successor (higher term) will write at fresh indices; a
            # leftover same-index lower-term entry must lose.  Drive the
            # real flow: crash, let the successor write, crash again, and
            # check a third recovery converges on the successor's data.
            coord.crash()
            second = yield from group.wait_until_serving(timeout_us=3 * SEC)
            yield from second.repmem.write(BASE, b"new-value")
            second.crash()
            coord.restart()
            third = yield from group.wait_until_serving(timeout_us=3 * SEC)
            return (yield from third.repmem.read(BASE, 9))

        assert run(sim, scenario()) == b"new-value"


class TestMemoryNodeRecovery:
    def test_full_cycle(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem
            yield from rm.write(BASE, b"before-crash")
            group.crash_memory_node(2)
            for index in range(10):
                yield from rm.write(BASE + 1024 + index * 512, b"during")
            yield sim.timeout(5 * MS)
            assert rm.states[2] == NodeState.DEAD
            group.restart_memory_node(2)
            deadline = sim.now + 20 * SEC
            while rm.states[2] != NodeState.LIVE and sim.now < deadline:
                yield sim.timeout(10 * MS)
            assert rm.states[2] == NodeState.LIVE
            assert 2 in rm.membership.members
            # The recovered node holds the full state: read from it alone.
            offset = rm.amap.raw_extent(BASE)
            return group.memory_nodes[2].repmem_region.read(offset, 12)

        assert run(sim, scenario()) == b"before-crash"

    def test_writes_continue_during_recovery(self):
        sim, _fabric, group = make_group(data_bytes=256 * 1024, recovery_chunk_bytes=8 * 1024)

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem
            group.crash_memory_node(1)
            yield from rm.write(BASE, b"detect")  # verb timeout marks it dead
            yield sim.timeout(5 * MS)
            assert rm.states[1] == NodeState.DEAD
            group.restart_memory_node(1)
            writes = 0
            deadline = sim.now + 30 * SEC
            while rm.states[1] != NodeState.LIVE and sim.now < deadline:
                yield from rm.write(BASE + (writes % 32) * 1024, b"live-traffic")
                writes += 1
            assert rm.states[1] == NodeState.LIVE
            return writes

        writes = run(sim, scenario(), until=90 * SEC)
        assert writes > 0

    def test_status_word_guards_untrusted_nodes(self):
        """A restarted (wiped) member must not be trusted by a successor
        coordinator before it has been re-copied."""
        sim, _fabric, group = make_group(memnode_poll_interval_us=10 * SEC)

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem
            yield from rm.write(BASE, b"precious")
            # Node 2 dies and comes back empty; the poll interval is long,
            # so it has NOT been re-copied when the coordinator dies.
            group.crash_memory_node(2)
            yield from rm.write(BASE + 1024, b"more")  # detects the death
            yield sim.timeout(5 * MS)
            group.restart_memory_node(2)
            coord.crash()
            successor = yield from group.wait_until_serving(timeout_us=5 * SEC)
            # The zeroed node must be excluded from serving.
            assert successor.repmem.states[2] != NodeState.LIVE
            return (yield from successor.repmem.read(BASE, 8))

        assert run(sim, scenario()) == b"precious"

    def test_ec_node_recovery_rebuilds_chunks(self):
        sim, _fabric, group = make_group(
            erasure_coding=True, direct_bytes=8 * 1024, data_bytes=64 * 1024
        )

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem
            yield from rm.write(16 * 1024, b"S" * 1024)
            group.crash_memory_node(2)  # the parity node
            yield from rm.write(17 * 1024, b"T" * 1024)
            yield sim.timeout(5 * MS)
            group.restart_memory_node(2)
            deadline = sim.now + 30 * SEC
            while rm.states[2] != NodeState.LIVE and sim.now < deadline:
                yield sim.timeout(10 * MS)
            assert rm.states[2] == NodeState.LIVE
            # Kill a data node; reads must now decode using the parity the
            # recovery rebuilt on node 2.
            group.crash_memory_node(0)
            yield sim.timeout(5 * MS)
            a = yield from rm.read(16 * 1024, 1024)
            b = yield from rm.read(17 * 1024, 1024)
            return a, b

        a, b = run(sim, scenario(), until=90 * SEC)
        assert a == b"S" * 1024
        assert b == b"T" * 1024


class TestBootstrapAndMembership:
    def test_fresh_group_bootstraps_all_members(self):
        sim, _fabric, group = make_group()
        sim.run(until=500 * MS)
        coordinator = group.serving_coordinator()
        assert coordinator.repmem.membership.members == frozenset({0, 1, 2})

    def test_membership_epoch_grows_across_recoveries(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            first_epoch = coord.repmem.membership.epoch
            coord.crash()
            successor = yield from group.wait_until_serving(timeout_us=3 * SEC)
            return first_epoch, successor.repmem.membership.epoch

        first_epoch, second_epoch = run(sim, scenario())
        assert second_epoch > first_epoch

    def test_dead_member_removed_from_membership(self):
        sim, _fabric, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            group.crash_memory_node(0)
            yield from coord.repmem.write(BASE, b"trigger-detection")
            yield sim.timeout(10 * MS)
            return coord.repmem.membership.members

        members = run(sim, scenario())
        assert 0 not in members
