"""Shared test configuration.

Hypothesis: simulations are deterministic but not fast on a single core,
so the profile disables per-example deadlines (wall-clock noise must not
fail a correct property) and keeps example counts moderate; individual
tests override ``max_examples`` where a structure deserves a deeper
search.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")
