"""Shared test configuration (see :mod:`repro.testing` for the helpers
this suite and the benchmark suite both use)."""

from repro.testing import register_hypothesis_profile

register_hypothesis_profile()
