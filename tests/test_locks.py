"""Unit tests for the coordinator-local block lock table."""

import pytest

from repro.core.locks import BlockLockTable, LockMode
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def locks(sim):
    return BlockLockTable(sim)


def acquire_now(sim, locks, blocks, mode):
    """Run an acquisition to completion; returns the token."""
    return sim.run_process(locks.acquire(blocks, mode))


class TestBasics:
    def test_uncontended_write_lock(self, sim, locks):
        token = acquire_now(sim, locks, [1, 2], LockMode.WRITE)
        assert locks.held(1) and locks.held(2)
        locks.release(token)
        assert not locks.held(1)

    def test_shared_readers(self, sim, locks):
        t1 = acquire_now(sim, locks, [1], LockMode.READ)
        t2 = acquire_now(sim, locks, [1], LockMode.READ)
        assert locks.held(1)
        locks.release(t1)
        assert locks.held(1)
        locks.release(t2)
        assert not locks.held(1)

    def test_writer_excludes_reader(self, sim, locks):
        token = acquire_now(sim, locks, [1], LockMode.WRITE)
        reader = sim.spawn(locks.acquire([1], LockMode.READ))
        sim.run()
        assert not reader.settled
        locks.release(token)
        sim.run()
        assert reader.settled

    def test_reader_excludes_writer(self, sim, locks):
        token = acquire_now(sim, locks, [1], LockMode.READ)
        writer = sim.spawn(locks.acquire([1], LockMode.WRITE))
        sim.run()
        assert not writer.settled
        locks.release(token)
        sim.run()
        assert writer.settled

    def test_duplicate_blocks_collapsed(self, sim, locks):
        token = acquire_now(sim, locks, [3, 3, 3], LockMode.WRITE)
        assert token.blocks == (3,)
        locks.release(token)

    def test_release_unheld_raises(self, sim, locks):
        token = acquire_now(sim, locks, [1], LockMode.READ)
        locks.release(token)
        with pytest.raises(RuntimeError):
            locks.release(token)

    def test_disjoint_blocks_independent(self, sim, locks):
        acquire_now(sim, locks, [1], LockMode.WRITE)
        t2 = sim.spawn(locks.acquire([2], LockMode.WRITE))
        sim.run()
        assert t2.settled


class TestFairness:
    def test_fifo_prevents_writer_starvation(self, sim, locks):
        """A queued writer blocks later readers (no read-through)."""
        r1 = acquire_now(sim, locks, [1], LockMode.READ)
        writer = sim.spawn(locks.acquire([1], LockMode.WRITE))
        sim.run()
        late_reader = sim.spawn(locks.acquire([1], LockMode.READ))
        sim.run()
        assert not writer.settled and not late_reader.settled
        locks.release(r1)
        sim.run()
        assert writer.settled
        assert not late_reader.settled  # writer goes first
        locks.release(writer.value)
        sim.run()
        assert late_reader.settled

    def test_waiters_count(self, sim, locks):
        acquire_now(sim, locks, [1], LockMode.WRITE)
        sim.spawn(locks.acquire([1], LockMode.READ))
        sim.spawn(locks.acquire([1], LockMode.WRITE))
        sim.run()
        assert locks.waiters(1) == 2

    def test_batch_of_readers_released_together(self, sim, locks):
        token = acquire_now(sim, locks, [1], LockMode.WRITE)
        readers = [sim.spawn(locks.acquire([1], LockMode.READ)) for _ in range(3)]
        sim.run()
        locks.release(token)
        sim.run()
        assert all(reader.settled for reader in readers)


class TestMultiBlock:
    def test_ordered_acquisition_no_deadlock(self, sim, locks):
        """Two processes locking overlapping sets in different order."""

        def worker(blocks):
            token = yield from locks.acquire(blocks, LockMode.WRITE)
            yield sim.timeout(1.0)
            locks.release(token)
            return True

        a = sim.spawn(worker([1, 2, 3]))
        b = sim.spawn(worker([3, 2, 1]))
        sim.run()
        assert a.ok and b.ok

    def test_many_concurrent_workers_all_finish(self, sim, locks):
        rng = __import__("random").Random(0)

        def worker():
            blocks = rng.sample(range(8), 3)
            token = yield from locks.acquire(blocks, LockMode.WRITE)
            yield sim.timeout(rng.uniform(0.1, 2.0))
            locks.release(token)
            return True

        workers = [sim.spawn(worker()) for _ in range(50)]
        sim.run()
        assert all(w.ok for w in workers)

    def test_mutual_exclusion_invariant(self, sim, locks):
        """At no instant do two writers hold the same block."""
        holding = {}
        violations = []

        def worker(tag):
            token = yield from locks.acquire([5], LockMode.WRITE)
            if holding:
                violations.append((tag, dict(holding)))
            holding[tag] = True
            yield sim.timeout(1.0)
            del holding[tag]
            locks.release(token)

        for tag in range(10):
            sim.spawn(worker(tag))
        sim.run()
        assert violations == []


class TestTryAcquire:
    def test_try_acquire_success(self, sim, locks):
        token = locks.try_acquire([1, 2], LockMode.WRITE)
        assert token is not None
        locks.release(token)

    def test_try_acquire_fails_on_contention(self, sim, locks):
        acquire_now(sim, locks, [1], LockMode.WRITE)
        assert locks.try_acquire([1], LockMode.READ) is None

    def test_try_acquire_fails_when_queue_nonempty(self, sim, locks):
        acquire_now(sim, locks, [1], LockMode.READ)
        sim.spawn(locks.acquire([1], LockMode.WRITE))
        sim.run()
        # Read would be grantable, but FIFO fairness forbids jumping the queue.
        assert locks.try_acquire([1], LockMode.READ) is None

    def test_try_acquire_all_or_nothing(self, sim, locks):
        acquire_now(sim, locks, [2], LockMode.WRITE)
        assert locks.try_acquire([1, 2], LockMode.WRITE) is None
        assert not locks.held(1)  # block 1 must not be left locked
