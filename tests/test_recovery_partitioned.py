"""Partitioned memory-node recovery (RAMCloud-style, §3.4.2 extended).

Covers the parallel copy path end to end: correctness of the rebuilt
bytes, fallback rules (partitions=1, erasure coding), the fenced
``repmem-recovery`` export, the verify step that gates the status
stamp, crash of a source mid-copy, coordinator failover mid-recovery,
and linearizability of client traffic while a partitioned recovery is
running.
"""

from types import SimpleNamespace

import pytest

from repro.bench.lincheck import GET, PUT, History, Op, check_history
from repro.core import SiftConfig, SiftGroup
from repro.core.errors import RecoveryIntegrityError
from repro.core.membership import RESERVED_BYTES
from repro.core.recovery import MemoryNodeRecoveryManager, PartitionProgress
from repro.kv import KvClient, KvConfig, kv_app_factory
from repro.kv.client import KvRequestFailed
from repro.net import Fabric
from repro.rdma.errors import RdmaConnectionRevoked
from repro.rdma.listener import RdmaListener
from repro.rdma.memory import MemoryRegion
from repro.rdma.qp import QpState, QueuePair
from repro.sim import MS, SEC, Simulator
from repro.storage.memory_node import (
    RECOVERY_REGION,
    REPMEM_REGION,
    STATUS_INITIALISED,
    STATUS_OFFSET,
)


def make_group(**overrides):
    sim = Simulator()
    fabric = Fabric(sim)
    defaults = dict(
        fm=1,
        fc=1,
        data_bytes=1024 * 1024,
        wal_entries=64,
        memnode_poll_interval_us=20 * MS,
    )
    defaults.update(overrides)
    group = SiftGroup(fabric, SiftConfig(**defaults), name="pr")
    group.start()
    return sim, fabric, group


def run(sim, gen, until=120 * SEC):
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled, "scenario did not finish"
    if process.failed:
        raise process.exception
    return process.value


def write_some(coord, count=32):
    """Process: log *count* distinct values so applies flow to every node."""
    for index in range(count):
        yield from coord.repmem.write(
            RESERVED_BYTES + index * 1024, b"val-%04d" % index
        )


def data_matches(group, a, b, length=None):
    """Byte-compare the logical data span of two memory nodes' regions."""
    coord = group.serving_coordinator()
    offset = coord.repmem.amap.raw_extent(0)
    length = length if length is not None else coord.repmem.config.data_bytes
    step = 256 * 1024
    ra = group.memory_nodes[a].repmem_region
    rb = group.memory_nodes[b].repmem_region
    position = 0
    while position < length:
        take = min(step, length - position)
        if ra.read(offset + position, take) != rb.read(offset + position, take):
            return False
        position += take
    return True


def crash_restart_and_recover(sim, group, node=2, gap_us=50 * MS):
    """Process: fail *node*, bring it back, wait until it serves again.

    Returns the coordinator's copy stats for the recovery.
    """
    coord = yield from group.wait_until_serving(timeout_us=5 * SEC)
    yield from write_some(coord)
    group.memory_nodes[node].crash()
    yield sim.timeout(gap_us)
    group.memory_nodes[node].restart()
    while coord.repmem.states[node] != "live":
        yield sim.timeout(2 * MS)
    yield sim.timeout(50 * MS)  # let background applies drain
    return coord.recovery_manager.copy_stats.get(node)


class TestPartitionedCopy:
    @pytest.mark.parametrize("partitions", [2, 4])
    def test_partitioned_copy_rebuilds_the_node(self, partitions):
        sim, _fabric, group = make_group(fm=2, recovery_partitions=partitions)

        def scenario():
            stats = yield from crash_restart_and_recover(sim, group)
            return stats

        stats = run(sim, scenario())
        assert stats["partitions"] == partitions
        assert stats["bytes"] == group.config.data_bytes
        assert len(stats["sources"]) == min(partitions, 4)
        assert 2 not in stats["sources"], "the target cannot source itself"
        assert data_matches(group, 0, 2)

    def test_partitions_one_keeps_the_single_stream(self):
        sim, _fabric, group = make_group(recovery_partitions=1)
        stats = run(sim, crash_restart_and_recover(sim, group))
        assert stats["partitions"] == 1
        assert stats["sources"] == []  # coordinator-driven, no pushers
        assert data_matches(group, 0, 2)

    def test_erasure_coding_falls_back_to_the_single_stream(self):
        sim, _fabric, group = make_group(
            erasure_coding=True,
            recovery_partitions=4,
            direct_bytes=8 * 1024,
            data_bytes=64 * 1024,
        )
        stats = run(sim, crash_restart_and_recover(sim, group))
        assert stats["partitions"] == 1, "EC must use the coordinator stream"
        assert stats["sources"] == []

    def test_more_partitions_than_sources(self):
        # fm=1 leaves two live sources; sixteen partitions round-robin
        # over them and the copy must still tile exactly.
        sim, _fabric, group = make_group(recovery_partitions=16)
        stats = run(sim, crash_restart_and_recover(sim, group))
        assert stats["partitions"] == 16
        assert sorted(stats["sources"]) == [0, 1]
        assert stats["bytes"] == group.config.data_bytes
        assert data_matches(group, 0, 2)

    def test_status_stamped_only_after_copy_completes(self):
        sim, _fabric, group = make_group(fm=2, recovery_partitions=4)
        observations = []

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=5 * SEC)
            yield from write_some(coord)
            node = group.memory_nodes[2]
            node.crash()
            yield sim.timeout(50 * MS)
            node.restart()

            def monitor():
                # Direct (simulator-side) view of the status word: it must
                # flip 0 -> INITIALISED exactly once, and the node's data
                # must already be fully copied at the instant of the flip.
                while True:
                    word = node.meta_region.read_word(STATUS_OFFSET)
                    if word == STATUS_INITIALISED:
                        stats = coord.recovery_manager.copy_stats.get(2)
                        observations.append(stats)
                        return
                    yield sim.timeout(1 * MS)

            monitor_proc = sim.spawn(monitor())
            while coord.repmem.states[2] != "live":
                yield sim.timeout(2 * MS)
            yield monitor_proc

        run(sim, scenario())
        assert observations, "status word never flipped to INITIALISED"
        stats = observations[0]
        assert stats is not None, "stamp happened before the copy verified"
        assert stats["bytes"] == group.config.data_bytes


class TestFailuresDuringPartitionedRecovery:
    def test_source_crash_mid_copy_retries_and_recovers(self):
        # fm=2: crash node 2, then kill source node 0 while the copy is
        # running.  The attempt aborts, the poller retries with the
        # remaining sources, and both nodes eventually rejoin.
        sim, _fabric, group = make_group(
            fm=2, recovery_partitions=4, data_bytes=4 * 1024 * 1024
        )

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=5 * SEC)
            yield from write_some(coord)
            group.memory_nodes[2].crash()
            yield sim.timeout(50 * MS)
            group.memory_nodes[2].restart()
            while coord.repmem.states[2] != "recovering":
                yield sim.timeout(200)
            group.memory_nodes[0].crash()  # a pusher dies mid-fragment
            # Leave the source down across several retry attempts: pushes
            # toward it time out on the deterministic budget and the
            # attempt aborts cleanly each round.
            yield sim.timeout(100 * MS)
            group.memory_nodes[0].restart()
            deadline = sim.now + 30 * SEC
            while sim.now < deadline:
                states = coord.repmem.states
                if states[0] == "live" and states[2] == "live":
                    break
                yield sim.timeout(5 * MS)
            yield sim.timeout(50 * MS)
            return dict(coord.repmem.states)

        states = run(sim, scenario())
        assert states[0] == "live" and states[2] == "live"
        assert data_matches(group, 1, 2)
        assert data_matches(group, 1, 0)

    def test_restarted_source_refuses_and_is_recovered_first(self):
        # A source that crashes AND restarts while no apply traffic runs
        # is still marked live in the coordinator's state map, but its
        # cleared region must never feed the rejoining node: the push
        # command is refused (UntrustedSourceError), the coordinator
        # marks the zombie dead, recovers it, and only then does the
        # original target recover — from trustworthy sources.
        sim, _fabric, group = make_group(
            fm=2, recovery_partitions=4, data_bytes=4 * 1024 * 1024
        )

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=5 * SEC)
            yield from write_some(coord)
            group.memory_nodes[2].crash()
            yield sim.timeout(50 * MS)
            group.memory_nodes[2].restart()
            while coord.repmem.states[2] != "recovering":
                yield sim.timeout(200)
            # Crash AND restart the source before the retry: no apply
            # fails toward it, so only the push-time attestation can
            # expose the restart.
            group.memory_nodes[0].crash()
            yield sim.timeout(30 * MS)
            group.memory_nodes[0].restart()
            deadline = sim.now + 30 * SEC
            while sim.now < deadline:
                states = coord.repmem.states
                if states[0] == "live" and states[2] == "live":
                    break
                yield sim.timeout(5 * MS)
            yield sim.timeout(50 * MS)
            return dict(coord.repmem.states), dict(coord.recovery_manager.copy_stats)

        states, stats = run(sim, scenario())
        assert states[0] == "live" and states[2] == "live"
        # The copy that finally rebuilt node 2 must not have trusted the
        # zombie incarnation of node 0.
        assert 0 not in stats[2]["sources"]
        assert stats[2]["bytes"] == group.config.data_bytes
        assert data_matches(group, 1, 2)
        assert data_matches(group, 1, 0)

    def test_coordinator_failover_mid_recovery(self):
        # Crash the coordinator while node 2 is mid-copy: the successor
        # runs log recovery, restarts node recovery from scratch, and
        # the fenced recovery window keeps any stale pushers out.
        sim, _fabric, group = make_group(
            fm=2, recovery_partitions=4, data_bytes=4 * 1024 * 1024
        )

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=5 * SEC)
            yield from write_some(coord)
            group.memory_nodes[2].crash()
            yield sim.timeout(50 * MS)
            group.memory_nodes[2].restart()
            while coord.repmem.states[2] != "recovering":
                yield sim.timeout(200)
            group.crash_coordinator()
            successor = yield from group.wait_until_serving(timeout_us=10 * SEC)
            while successor.repmem.states[2] != "live":
                yield sim.timeout(5 * MS)
            yield sim.timeout(50 * MS)
            stats = successor.recovery_manager.copy_stats.get(2)
            values = []
            for index in range(32):
                values.append(
                    (yield from successor.repmem.read(RESERVED_BYTES + index * 1024, 8))
                )
            return stats, values

        stats, values = run(sim, scenario())
        assert stats is not None and stats["bytes"] == group.config.data_bytes
        assert values == [b"val-%04d" % index for index in range(32)]
        assert data_matches(group, 0, 2)


class TestRecoveryFencing:
    """The ``repmem-recovery`` alias and its §3.2-style fencing."""

    def test_alias_shares_backing_pages(self):
        region = MemoryRegion("primary", 8192)
        view = region.alias("view")
        region.write(4096, b"hello")
        assert view.read(4096, 5) == b"hello"
        view.write(0, b"back")
        assert region.read(0, 4) == b"back"
        assert view.size == region.size

    def test_reattaching_the_primary_revokes_pushers(self):
        sim = Simulator()
        fabric = Fabric(sim)
        target = fabric.add_host("target")
        coordinator = fabric.add_host("coordinator")
        pusher_host = fabric.add_host("pusher")
        from repro.rdma.nic import Rnic

        listener = RdmaListener(target)
        primary = MemoryRegion(REPMEM_REGION, 4096)
        listener.export(primary, exclusive=True)
        listener.export(
            primary.alias(RECOVERY_REGION), fenced_by=REPMEM_REGION
        )

        coord_nic = Rnic(coordinator, fabric)
        pusher_nic = Rnic(pusher_host, fabric)
        pusher_qp = QueuePair(pusher_nic, listener, name="pusher")
        old_coord_qp = QueuePair(coord_nic, listener, name="old-coord")
        new_coord_qp = QueuePair(coord_nic, listener, name="new-coord")

        def scenario():
            yield coordinator.spawn(old_coord_qp.connect([REPMEM_REGION]))
            yield pusher_host.spawn(pusher_qp.connect([RECOVERY_REGION]))
            assert pusher_qp.state is QpState.CONNECTED
            # A successor coordinator claims the primary region: both the
            # old holder AND the subordinate pusher must lose access.
            yield coordinator.spawn(new_coord_qp.connect([REPMEM_REGION]))
            assert old_coord_qp.state is QpState.REVOKED
            assert pusher_qp.state is QpState.REVOKED
            try:
                yield pusher_qp.write(RECOVERY_REGION, 0, b"stale")
            except RdmaConnectionRevoked:
                return True
            return False

        process = sim.spawn(scenario())
        sim.run_until_settled(process, deadline=1 * SEC)
        assert process.settled and not process.failed, getattr(
            process, "exception", None
        )
        assert process.value is True

    def test_pusher_does_not_revoke_the_primary(self):
        sim = Simulator()
        fabric = Fabric(sim)
        target = fabric.add_host("target")
        coordinator = fabric.add_host("coordinator")
        from repro.rdma.nic import Rnic

        listener = RdmaListener(target)
        primary = MemoryRegion(REPMEM_REGION, 4096)
        listener.export(primary, exclusive=True)
        listener.export(primary.alias(RECOVERY_REGION), fenced_by=REPMEM_REGION)
        coord_nic = Rnic(coordinator, fabric)
        coord_qp = QueuePair(coord_nic, listener, name="coord")
        pusher_qp = QueuePair(coord_nic, listener, name="pusher")

        def scenario():
            yield coordinator.spawn(coord_qp.connect([REPMEM_REGION]))
            yield coordinator.spawn(pusher_qp.connect([RECOVERY_REGION]))
            assert coord_qp.state is QpState.CONNECTED
            assert pusher_qp.state is QpState.CONNECTED

        process = sim.spawn(scenario())
        sim.run_until_settled(process, deadline=1 * SEC)
        assert process.settled and not process.failed


class TestVerifyStep:
    """Pure-arithmetic checks of the merge/verify gate."""

    def _manager(self, data_bytes=1024):
        repmem = SimpleNamespace(config=SiftConfig(data_bytes=data_bytes))
        return MemoryNodeRecoveryManager(repmem)

    def _progress(self, index, start, end, fragments):
        progress = PartitionProgress(index, None, start, end, 0.0)
        for addr, length in fragments:
            progress.done.append((addr, length))
            progress.bytes_done += length
        return progress

    def test_exact_tiling_passes(self):
        manager = self._manager(1024)
        parts = [
            self._progress(0, 0, 512, [(0, 256), (256, 256)]),
            self._progress(1, 512, 1024, [(512, 512)]),
        ]
        manager._verify_copy(2, parts)  # must not raise

    def test_gap_rejected(self):
        manager = self._manager(1024)
        parts = [
            self._progress(0, 0, 512, [(0, 256)]),
            self._progress(1, 512, 1024, [(512, 512)]),
        ]
        parts[0].bytes_done = 512  # lie about the total; the tiling still has a hole
        with pytest.raises(RecoveryIntegrityError):
            manager._verify_copy(2, parts)

    def test_overlap_rejected(self):
        manager = self._manager(1024)
        parts = [
            self._progress(0, 0, 512, [(0, 512)]),
            self._progress(1, 512, 1024, [(256, 512)]),
        ]
        with pytest.raises(RecoveryIntegrityError):
            manager._verify_copy(2, parts)

    def test_short_partition_rejected(self):
        manager = self._manager(1024)
        parts = [self._progress(0, 0, 1024, [(0, 512)])]
        with pytest.raises(RecoveryIntegrityError):
            manager._verify_copy(2, parts)

    def test_short_image_rejected(self):
        manager = self._manager(2048)
        parts = [self._progress(0, 0, 1024, [(0, 1024)])]
        with pytest.raises(RecoveryIntegrityError):
            manager._verify_copy(2, parts)


class TestLincheckDuringPartitionedRecovery:
    @pytest.mark.parametrize("partitions", [1, 4, 16])
    def test_history_linearizable_across_partitioned_recovery(self, partitions):
        """Concurrent clients while a memory node fails, restarts, and is
        re-populated by the partitioned copy: every acked write survives
        and no read observes a half-copied region."""
        sim = Simulator()
        fabric = Fabric(sim)
        kv_config = KvConfig(max_keys=256, wal_entries=128)
        group = SiftGroup(
            fabric,
            kv_config.sift_config(
                fm=1,
                fc=1,
                wal_entries=128,
                memnode_poll_interval_us=30 * MS,
                recovery_partitions=partitions,
            ),
            name=f"linrec{partitions}",
            app_factory=kv_app_factory(kv_config),
        )
        group.start()
        history = History()

        def client_loop(tag):
            host = fabric.add_host(f"lc{tag}", cores=2)
            client = KvClient(host, fabric, group)
            rng = fabric.rng.stream(f"linrec:{tag}")
            for round_number in range(25):
                key = b"key-%d" % rng.randrange(4)
                if rng.random() < 0.5:
                    value = b"%d:%d" % (tag, round_number)
                    invoked = sim.now
                    try:
                        yield from client.put(key, value)
                        history.record(Op(key, PUT, value, invoked, sim.now))
                    except KvRequestFailed:
                        history.record(Op(key, PUT, value, invoked, None))
                else:
                    invoked = sim.now
                    try:
                        got = yield from client.get(key)
                        history.record(Op(key, GET, got, invoked, sim.now))
                    except KvRequestFailed:
                        pass  # a failed read constrains nothing

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            workers = [sim.spawn(client_loop(tag)) for tag in range(4)]
            yield sim.timeout(15 * MS)
            group.memory_nodes[2].crash()
            yield sim.timeout(25 * MS)
            group.memory_nodes[2].restart()
            for worker in workers:
                yield worker
            # Recovery must complete under the (possibly rotated)
            # serving coordinator before the run ends.
            serving = group.serving_coordinator() or coord
            deadline = sim.now + 30 * SEC
            while sim.now < deadline and serving.repmem.states[2] != "live":
                yield sim.timeout(5 * MS)
            return dict(serving.repmem.states)

        process = sim.spawn(scenario())
        sim.run_until_settled(process, deadline=240 * SEC)
        assert process.settled and process.ok, getattr(process, "exception", None)
        states = process.value
        assert states[2] == "live", f"node 2 never recovered: {states}"
        ok, offender = check_history(history)
        assert ok, f"history not linearizable for key {offender!r}"
        assert len(history.ops) > 50  # the run actually exercised traffic
