"""Tests for the KV client's retry/failover behaviour."""


from repro.core import SiftGroup
from repro.kv import KvClient, KvConfig, kv_app_factory
from repro.kv.client import KvRequestFailed
from repro.net import Fabric
from repro.sim import MS, SEC, Simulator


def make_stack():
    sim = Simulator()
    fabric = Fabric(sim)
    kv_config = KvConfig(max_keys=128, wal_entries=64)
    group = SiftGroup(
        fabric,
        kv_config.sift_config(fm=1, fc=1, wal_entries=64),
        name="c",
        app_factory=kv_app_factory(kv_config),
    )
    group.start()
    return sim, fabric, group


def run(sim, gen, until=60 * SEC):
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled
    if process.failed:
        raise process.exception
    return process.value


class TestRouting:
    def test_client_learns_the_coordinator(self):
        sim, fabric, group = make_stack()
        client = KvClient(fabric.add_host("client", cores=2), fabric, group)
        client._preferred = 1  # deliberately point at the wrong node

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from client.put(b"k", b"v")
            first_latency_requests = client.stats["requests"]
            start = sim.now
            yield from client.get(b"k")
            return sim.now - start

        second_latency = run(sim, scenario())
        # Once learned, requests go straight to the coordinator: one RPC.
        assert second_latency < 200.0

    def test_client_retries_through_failover(self):
        sim, fabric, group = make_stack()
        client = KvClient(fabric.add_host("client", cores=2), fabric, group)

        def scenario():
            first = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from client.put(b"k", b"v")
            before = client._preferred
            group.crash_coordinator()
            value = yield from client.get(b"k")
            second = group.serving_coordinator()
            return value, before, client._preferred, first is not second

        value, before, after, changed = run(sim, scenario())
        assert value == b"v"
        assert changed  # a different CPU node answered
        assert after != before  # and the client now prefers it

    def test_request_fails_when_whole_group_down(self):
        sim, fabric, group = make_stack()
        client = KvClient(
            fabric.add_host("client", cores=2), fabric, group,
            max_rounds=10, retry_backoff_us=1 * MS,
        )

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            for cpu_node in group.cpu_nodes:
                cpu_node.crash()
            try:
                yield from client.get(b"k")
            except KvRequestFailed:
                return "failed"
            return "served"

        assert run(sim, scenario()) == "failed"

    def test_stats_track_requests(self):
        sim, fabric, group = make_stack()
        client = KvClient(fabric.add_host("client", cores=2), fabric, group)

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            for _ in range(5):
                yield from client.put(b"k", b"v")
            return client.stats["requests"]

        assert run(sim, scenario()) == 5

    def test_concurrent_clients(self):
        sim, fabric, group = make_stack()
        clients = [
            KvClient(fabric.add_host(f"c{i}", cores=2), fabric, group) for i in range(6)
        ]

        def worker(client, tag):
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from client.put(b"key-%d" % tag, b"val-%d" % tag)
            return (yield from client.get(b"key-%d" % tag))

        processes = [
            sim.spawn(worker(client, tag)) for tag, client in enumerate(clients)
        ]
        for process in processes:
            sim.run_until_settled(process, deadline=30 * SEC)
        values = [process.value for process in processes]
        assert values == [b"val-%d" % tag for tag in range(6)]
