"""Election edge cases the happy-path suites never hit.

Raft's safety argument lives in its corner cases: simultaneous
candidacies that split the vote, stale-term ghosts returning after a
crash-restart, and candidates that must yield to a higher term
mid-election.  Sift delegates the equivalent races to memory-node CAS
words; its simultaneous-campaign case rides along here for symmetry.
"""


from repro.baselines.raft import RaftCluster, RaftConfig, _AppendEntries, _RequestVote
from repro.sim import MS, SEC
from repro.testing import make_group, make_sim


def make_raft(seed=0, f=1):
    sim, fabric = make_sim(seed)
    cluster = RaftCluster(fabric, RaftConfig(f=f), name="raft")
    cluster.start()
    sim.run(until=200 * MS)
    assert cluster.leader() is not None
    return sim, cluster


def leaders_of(cluster):
    return [n for n in cluster.nodes if n.role == "leader" and n.host.alive]


class TestSplitVote:
    def test_exact_tie_stalls_the_term_then_converges(self):
        sim, cluster = make_raft(seed=21)
        leader = cluster.leader()
        survivors = [n for n in cluster.nodes if n is not leader]
        leader.crash()

        # Both survivors' timeouts fire at the same instant: each votes
        # for itself in the same term and must deny the other.
        for node in survivors:
            node._start_election()
        tie_term = survivors[0].term
        assert survivors[1].term == tie_term

        # Let the crossed vote requests land (well inside the 12ms
        # minimum election timeout, so no new term starts yet).
        sim.run(until=sim.now + 5 * MS)
        assert leaders_of(cluster) == [], "a split vote must not elect"
        assert all(node.voted_for == node.index for node in survivors)

        # The randomized back-off breaks the tie in a *later* term.
        sim.run(until=sim.now + 1 * SEC)
        winners = leaders_of(cluster)
        assert len(winners) == 1
        assert winners[0].term > tie_term

    def test_simultaneous_sift_campaigns_elect_exactly_one(self):
        """Sift's version of the race: all CPU nodes campaign from t=0
        and the admin-word CAS arbitrates (§3.2) — never two winners."""
        sim, _fabric, group = make_group(fc=3, seed=21)  # 4 simultaneous candidates
        sim.run(until=1 * SEC)
        winners = [n for n in group.cpu_nodes if n.is_coordinator]
        assert len(winners) == 1
        total_won = sum(n.stats["elections_won"] for n in group.cpu_nodes)
        assert total_won == 1


class TestStaleTermAfterRestart:
    def test_restarted_node_cannot_win_with_a_stale_term(self):
        sim, cluster = make_raft(seed=22)
        leader = cluster.leader()
        ghost = next(n for n in cluster.nodes if n is not leader)
        ghost.crash()
        sim.run(until=sim.now + 100 * MS)

        # Commit something while the ghost is away so its log is behind.
        from repro.kv.client import KvClient

        client = KvClient(
            cluster.fabric.add_host("edge-client", cores=2), cluster.fabric, cluster
        )
        process = sim.spawn(client.put(b"k", b"v"))
        sim.run_until_settled(process, deadline=sim.now + 1 * SEC)
        assert process.ok

        ghost.restart()
        assert ghost.term == 0  # soft state gone: this is the stale ghost
        ghost._start_election()  # its request carries term 1, log empty
        sim.run(until=sim.now + 200 * MS)

        # Nobody may have granted it: its term is behind and so is its log.
        assert ghost.role != "leader"
        assert cluster.leader() is leader
        # The denial replies carry the real term; the ghost adopted it.
        assert ghost.term >= leader.term
        assert ghost.role == "follower"

    def test_stale_term_vote_request_is_denied_without_disturbing_state(self):
        sim, cluster = make_raft(seed=23)
        leader = cluster.leader()
        follower = next(n for n in cluster.nodes if n is not leader)
        term_before = follower.term
        voted_before = follower.voted_for

        stale = _RequestVote(term=term_before - 1, candidate=2, last_index=99, last_term=9)
        follower._on_request_vote(stale)
        sim.run(until=sim.now + 50 * MS)

        assert follower.term == term_before
        assert follower.voted_for == voted_before
        assert cluster.leader() is leader


class TestHigherTermDuringCandidacy:
    def test_candidate_steps_down_on_higher_term_heartbeat(self):
        sim, cluster = make_raft(seed=24)
        leader = cluster.leader()
        candidate = next(n for n in cluster.nodes if n is not leader)
        candidate._start_election()
        assert candidate.role == "candidate"
        mid_election_term = candidate.term

        heartbeat = _AppendEntries(
            term=mid_election_term + 1,
            leader=leader.index,
            prev_index=0,
            prev_term=0,
            entries=(),
            commit=0,
        )
        process = candidate.host.spawn(candidate._on_append(heartbeat))
        sim.run_until_settled(process, deadline=sim.now + 100 * MS)

        assert candidate.role == "follower"
        assert candidate.term == mid_election_term + 1
        assert candidate.leader_hint == leader.index

    def test_candidate_ignores_equal_term_vote_but_accepts_append(self):
        """An AppendEntries at the candidate's own term means a peer won
        that term: the candidate must fall back to follower (§5.2 of the
        Raft paper)."""
        sim, cluster = make_raft(seed=25)
        leader = cluster.leader()
        candidate = next(n for n in cluster.nodes if n is not leader)
        candidate._start_election()
        same_term = candidate.term

        heartbeat = _AppendEntries(
            term=same_term,
            leader=leader.index,
            prev_index=0,
            prev_term=0,
            entries=(),
            commit=0,
        )
        process = candidate.host.spawn(candidate._on_append(heartbeat))
        sim.run_until_settled(process, deadline=sim.now + 100 * MS)
        assert candidate.role == "follower"
