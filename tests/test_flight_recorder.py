"""Flight recorder ring, postmortem dumps, and failure-path wiring.

Covers the always-on bounded ring (eviction, orphan rendering), the
postmortem file format, and the two failure paths that reference their
dump in the raised error: chaos invariant violations
(:meth:`ChaosRunner._fail`) and recovery integrity failures
(:meth:`MemoryNodeRecoveryManager._verify_copy`).  All dumps are
redirected to a tmpdir via ``REPRO_POSTMORTEM_DIR``.
"""

import json
from types import SimpleNamespace

import pytest

from repro.chaos.runner import ChaosError, ChaosRunner
from repro.chaos.schedule import FaultSchedule
from repro.core import SiftConfig
from repro.core.errors import RecoveryIntegrityError
from repro.core.recovery import MemoryNodeRecoveryManager, PartitionProgress
from repro.obs import state
from repro.obs.export import load_spans
from repro.obs.flight import (
    DEFAULT_CAPACITY,
    POSTMORTEM_KIND,
    FlightRecorder,
    maybe_postmortem,
    postmortem_doc,
    write_postmortem,
)
from repro.obs.trace import tracing


@pytest.fixture
def postmortem_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_POSTMORTEM_DIR", str(tmp_path))
    return tmp_path


def _read(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


class TestRing:
    def test_default_capacity_and_validation(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_ring_evicts_oldest_first(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.instant(f"tick.{i}", float(i))
        assert len(recorder) == 4
        assert [s.name for s in recorder.spans] == [
            "tick.6", "tick.7", "tick.8", "tick.9",
        ]

    def test_evicted_parent_leaves_renderable_orphan(self):
        recorder = FlightRecorder(capacity=2)
        parent = recorder.span("op.parent", 0.0)
        child = parent.child("op.child", 1.0)
        child.finish(2.0)
        recorder.instant("tick", 3.0)  # evicts op.parent from the ring
        assert parent not in recorder.spans
        roots = recorder.roots()
        assert child in roots  # orphan promoted to top level
        rendered = recorder.render_tree()
        assert "op.child" in rendered
        assert "tick" in rendered

    def test_recording_beyond_capacity_is_cheap_and_bounded(self):
        recorder = FlightRecorder(capacity=8)
        with tracing(recorder):
            for i in range(1000):
                recorder.instant("spin", float(i))
        assert len(recorder) == 8


class TestPostmortem:
    def test_doc_shape(self):
        recorder = FlightRecorder(capacity=16)
        recorder.instant("boom", 1.0)
        doc = postmortem_doc("it broke", tracer=recorder, extra={"node": 3})
        assert doc["kind"] == POSTMORTEM_KIND
        assert doc["reason"] == "it broke"
        assert doc["ring_capacity"] == 16
        assert doc["extra"] == {"node": 3}
        assert [s["name"] for s in doc["spans"]] == ["boom"]
        assert doc["registry"] is None

    def test_write_slugs_reason_and_never_overwrites(self, tmp_path):
        recorder = FlightRecorder()
        recorder.instant("x", 0.0)
        first = write_postmortem(
            "Leader crashed: quorum lost!", tracer=recorder, out_dir=str(tmp_path)
        )
        second = write_postmortem(
            "Leader crashed: quorum lost!", tracer=recorder, out_dir=str(tmp_path)
        )
        assert first.endswith("POSTMORTEM_leader-crashed-quorum-lost.json")
        assert second.endswith("POSTMORTEM_leader-crashed-quorum-lost-1.json")
        assert first != second
        assert _read(first)["reason"] == "Leader crashed: quorum lost!"

    def test_postmortem_feeds_the_exporter(self, tmp_path):
        recorder = FlightRecorder()
        recorder.instant("final.moment", 5.0, host="n0")
        path = write_postmortem("exported", tracer=recorder, out_dir=str(tmp_path))
        assert load_spans(path) == recorder.to_dicts()

    def test_maybe_postmortem_without_tracer_is_a_noop(self, postmortem_dir):
        assert state.TRACER is None
        assert maybe_postmortem("nothing installed") is None
        assert list(postmortem_dir.iterdir()) == []

    def test_maybe_postmortem_uses_installed_tracer_and_env_dir(
        self, postmortem_dir
    ):
        with tracing(FlightRecorder()) as recorder:
            recorder.instant("last.span", 9.0)
            path = maybe_postmortem("env dir", extra={"k": "v"})
        assert path is not None
        assert path.startswith(str(postmortem_dir))
        doc = _read(path)
        assert doc["extra"] == {"k": "v"}
        assert [s["name"] for s in doc["spans"]] == ["last.span"]


class TestChaosFailurePath:
    def test_fail_references_postmortem_when_traced(self, postmortem_dir):
        runner = ChaosRunner(lambda fabric: None, FaultSchedule(), seed=7)
        with tracing(FlightRecorder()) as recorder:
            recorder.instant("pre.failure", 1.0)
            with pytest.raises(ChaosError) as excinfo:
                runner._fail("invariant broken", [(0.0, "crash leader")])
        message = str(excinfo.value)
        assert "postmortem:" in message
        path = message.split("postmortem:", 1)[1].splitlines()[0].strip()
        doc = _read(path)
        assert doc["extra"]["seed"] == 7
        assert doc["extra"]["trace"] == [[0.0, "crash leader"]]
        assert "chaos invariant broken" in doc["reason"]

    def test_fail_untraced_raises_plain_error(self, postmortem_dir):
        runner = ChaosRunner(lambda fabric: None, FaultSchedule(), seed=7)
        with pytest.raises(ChaosError) as excinfo:
            runner._fail("invariant broken", [])
        assert "postmortem" not in str(excinfo.value)
        assert list(postmortem_dir.iterdir()) == []

    def test_run_installs_and_removes_its_own_recorder(self, postmortem_dir):
        seen = {}

        def build(_fabric):
            seen["tracer"] = state.TRACER
            raise RuntimeError("stop after the tracer check")

        runner = ChaosRunner(build, FaultSchedule(), seed=3)
        assert state.TRACER is None
        with pytest.raises(RuntimeError):
            runner.run()
        assert isinstance(seen["tracer"], FlightRecorder)
        assert state.TRACER is None


class TestRecoveryFailurePath:
    def _manager(self, data_bytes=1024):
        repmem = SimpleNamespace(config=SiftConfig(data_bytes=data_bytes))
        return MemoryNodeRecoveryManager(repmem)

    def _gap_parts(self):
        progress = PartitionProgress(0, None, 0, 1024, 0.0)
        progress.done.append((0, 512))  # [512, 1024) never copied
        progress.bytes_done = 1024  # lie so the tiling check trips, not the size one
        return [progress]

    def test_integrity_error_references_postmortem_when_traced(
        self, postmortem_dir
    ):
        manager = self._manager()
        with tracing(FlightRecorder()) as recorder:
            recorder.instant("copy.fragment", 2.0)
            with pytest.raises(RecoveryIntegrityError) as excinfo:
                manager._verify_copy(2, self._gap_parts())
        message = str(excinfo.value)
        assert "[postmortem: " in message
        path = message.split("[postmortem: ", 1)[1].rstrip("]")
        doc = _read(path)
        assert doc["extra"]["node"] == 2
        assert doc["extra"]["sim_now_us"] is None  # stubbed repmem has no sim
        assert [s["name"] for s in doc["spans"]] == ["copy.fragment"]

    def test_integrity_error_untraced_stays_plain(self, postmortem_dir):
        manager = self._manager()
        with pytest.raises(RecoveryIntegrityError) as excinfo:
            manager._verify_copy(2, self._gap_parts())
        assert "postmortem" not in str(excinfo.value)
        assert list(postmortem_dir.iterdir()) == []
