"""Golden-file tests for the BENCH_*.json artifact schema and compare CLI."""

import copy
import glob
import json
import os

import pytest

from repro.obs.artifact import (
    ARTIFACT_KIND,
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    artifact_filename,
    load_artifact,
    make_artifact,
    validate_artifact,
    write_artifact,
)
from repro.obs.compare import compare_artifacts, main as compare_main
from repro.obs.registry import MetricsRegistry

BASELINES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "baselines",
)


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("rdma.verbs", type="read").inc(10)
    registry.gauge("bench.throughput_ops").set(1234.5)
    registry.histogram("lat", op="read").observe(42.0)
    return registry


def _write(tmp_path, figure="figX", simulated=None):
    return write_artifact(
        str(tmp_path),
        figure,
        simulated if simulated is not None else {"ops_per_sec": 1000.0},
        seeds=[1],
        params={"clients": 4},
        registry=_registry(),
        wall_clock_s=1.5,
    )


class TestSchema:
    def test_filename(self):
        assert artifact_filename("fig5") == "BENCH_fig5.json"
        with pytest.raises(ArtifactError):
            artifact_filename("fig 5")
        with pytest.raises(ArtifactError):
            artifact_filename("")

    def test_round_trip(self, tmp_path):
        path = _write(tmp_path)
        assert os.path.basename(path) == "BENCH_figX.json"
        doc = load_artifact(path)
        assert doc["kind"] == ARTIFACT_KIND
        assert doc["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert doc["figure"] == "figX"
        assert doc["seeds"] == [1]
        assert doc["simulated"] == {"ops_per_sec": 1000.0}
        assert doc["registry"]["counters"] == {"rdma.verbs{type=read}": 10.0}
        assert doc["registry"]["histograms"]["lat{op=read}"]["count"] == 1.0
        assert doc["host"]["wall_clock_s"] == 1.5

    def test_canonical_encoding_is_stable(self, tmp_path):
        a = _write(tmp_path / "a")
        b = _write(tmp_path / "b")
        doc_a = json.load(open(a))
        doc_b = json.load(open(b))
        # Everything but the volatile timestamp is byte-stable.
        doc_a.pop("created_unix"), doc_b.pop("created_unix")
        assert json.dumps(doc_a, sort_keys=True) == json.dumps(doc_b, sort_keys=True)

    def test_validate_rejects_malformed(self):
        good = make_artifact("f", {"x": 1}, seeds=[1])
        validate_artifact(good)
        for mutate in (
            lambda d: d.pop("simulated"),
            lambda d: d.__setitem__("kind", "something-else"),
            lambda d: d.__setitem__("schema_version", 99),
            lambda d: d.__setitem__("seeds", ["one"]),
            lambda d: d.__setitem__("simulated", [1, 2]),
            lambda d: d.__setitem__("figure", ""),
        ):
            doc = copy.deepcopy(good)
            mutate(doc)
            with pytest.raises(ArtifactError):
                validate_artifact(doc)

    def test_nan_is_rejected_at_write_time(self, tmp_path):
        with pytest.raises(ValueError):
            _write(tmp_path, simulated={"bad": float("nan")})

    def test_committed_baselines_validate(self):
        paths = sorted(glob.glob(os.path.join(BASELINES, "BENCH_*.json")))
        assert len(paths) >= 3, "benchmarks/baselines/ must hold fig5/fig6/fig11"
        for path in paths:
            doc = load_artifact(path)  # raises on schema violation
            assert doc["registry"] is not None
            assert doc["simulated"], path


class TestCompare:
    def test_self_identity(self, tmp_path):
        path = _write(tmp_path)
        doc = load_artifact(path)
        assert compare_artifacts(doc, doc) == []
        assert compare_main([path, path]) == 0

    def test_simulated_drift_detected(self, tmp_path):
        path = _write(tmp_path)
        doc = load_artifact(path)
        drifted = copy.deepcopy(doc)
        drifted["simulated"]["ops_per_sec"] += 0.0001
        diffs = compare_artifacts(doc, drifted)
        assert len(diffs) == 1 and "simulated.ops_per_sec" in diffs[0]

    def test_registry_drift_detected(self, tmp_path):
        doc = load_artifact(_write(tmp_path))
        drifted = copy.deepcopy(doc)
        drifted["registry"]["counters"]["rdma.verbs{type=read}"] = 11.0
        assert compare_artifacts(doc, drifted)

    def test_volatile_sections_ignored(self, tmp_path):
        doc = load_artifact(_write(tmp_path))
        other = copy.deepcopy(doc)
        other["git_sha"] = "deadbeef"
        other["created_unix"] = 0.0
        other["host"]["platform"] = "somewhere-else"
        assert compare_artifacts(doc, other) == []

    def test_rel_tol_relaxes_numbers(self, tmp_path):
        doc = load_artifact(_write(tmp_path))
        drifted = copy.deepcopy(doc)
        drifted["simulated"]["ops_per_sec"] *= 1.0005
        assert compare_artifacts(doc, drifted)
        assert compare_artifacts(doc, drifted, rel_tol=0.01) == []

    def test_type_strictness(self):
        a = make_artifact("f", {"flag": True}, seeds=[1])
        b = make_artifact("f", {"flag": 1}, seeds=[1])
        assert any("flag" in d for d in compare_artifacts(a, b))

    def test_wall_clock_band(self, tmp_path):
        doc = load_artifact(_write(tmp_path))
        slow = copy.deepcopy(doc)
        slow["host"]["wall_clock_s"] = doc["host"]["wall_clock_s"] * 10
        # Ignored by default; enforced when a band is requested.
        assert compare_artifacts(doc, slow) == []
        assert compare_artifacts(doc, slow, wall_clock_band=2.0)
        assert compare_artifacts(doc, slow, wall_clock_band=20.0) == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        path = _write(tmp_path)
        doc = load_artifact(path)
        doc["simulated"]["ops_per_sec"] = 999.0
        bad = str(tmp_path / "BENCH_bad.json")
        with open(bad, "w") as fh:
            json.dump(doc, fh)
        assert compare_main([path, bad]) == 1
        assert "simulated.ops_per_sec" in capsys.readouterr().out
        missing = str(tmp_path / "nope.json")
        assert compare_main([path, missing]) == 2
