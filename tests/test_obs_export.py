"""Perfetto/Chrome trace export: golden bytes, schema, CLI round-trip.

The golden literal below pins the full canonical encoding — metadata
records first, tracks numbered in sorted-name order, events ordered by
``(ts, span_id)``, sorted JSON keys, trailing newline.  If the export
format changes intentionally, regenerate the literal *and* refresh
``benchmarks/baselines/TRACE_fig6path.json`` in the same commit (CI
byte-compares that artifact too).
"""

import json
import textwrap

import pytest

from repro.obs.export import (
    ExportError,
    chrome_trace,
    chrome_trace_bytes,
    load_spans,
    main,
    session_doc,
    validate_chrome_trace,
    write_chrome_trace,
    write_session,
)
from repro.obs.trace import Tracer


def _golden_tracer():
    tracer = Tracer()
    root = tracer.span("rpc.kv.put", 10.0, src="client-0")
    root.event("rpc.recv", 12.5, method="kv.put")
    tracer.span("poll", 11.0, host="nic0")  # left unfinished on purpose
    root.finish(30.0)
    return tracer


GOLDEN = textwrap.dedent(
    """\
    {
      "displayTimeUnit": "ms",
      "traceEvents": [
        {
          "args": {
            "name": "golden"
          },
          "name": "process_name",
          "ph": "M",
          "pid": 1,
          "tid": 0
        },
        {
          "args": {
            "name": "client-0"
          },
          "name": "thread_name",
          "ph": "M",
          "pid": 1,
          "tid": 1
        },
        {
          "args": {
            "name": "nic0"
          },
          "name": "thread_name",
          "ph": "M",
          "pid": 1,
          "tid": 2
        },
        {
          "args": {
            "name": "trace"
          },
          "name": "thread_name",
          "ph": "M",
          "pid": 1,
          "tid": 3
        },
        {
          "args": {
            "span_id": 1,
            "src": "client-0"
          },
          "dur": 20.0,
          "name": "rpc.kv.put",
          "ph": "X",
          "pid": 1,
          "tid": 1,
          "ts": 10.0
        },
        {
          "args": {
            "host": "nic0",
            "span_id": 3,
            "unfinished": true
          },
          "dur": 0.0,
          "name": "poll",
          "ph": "X",
          "pid": 1,
          "tid": 2,
          "ts": 11.0
        },
        {
          "args": {
            "method": "kv.put",
            "parent_id": 1,
            "span_id": 2
          },
          "name": "rpc.recv",
          "ph": "i",
          "pid": 1,
          "s": "t",
          "tid": 3,
          "ts": 12.5
        }
      ]
    }
    """
).encode("utf-8")


class TestChromeTrace:
    def test_golden_bytes(self):
        payload = chrome_trace_bytes(
            _golden_tracer().to_dicts(), process_name="golden"
        )
        assert payload == GOLDEN

    def test_golden_validates(self):
        doc = json.loads(GOLDEN.decode("utf-8"))
        validate_chrome_trace(doc)  # must not raise

    def test_byte_identical_across_independent_builds(self):
        a = chrome_trace_bytes(_golden_tracer().to_dicts())
        b = chrome_trace_bytes(_golden_tracer().to_dicts())
        assert a == b

    def test_unfinished_span_exports_as_zero_duration_complete_event(self):
        tracer = Tracer()
        tracer.span("open.op", 5.0)
        (event,) = [
            e
            for e in chrome_trace(tracer.to_dicts())["traceEvents"]
            if e["ph"] != "M"
        ]
        assert event["ph"] == "X"
        assert event["dur"] == 0.0
        assert event["args"]["unfinished"] is True

    def test_same_timestamp_instants_keep_span_id_order(self):
        tracer = Tracer()
        for name in ("b.second", "a.first", "c.third"):
            tracer.instant(name, 7.0)
        body = [
            e
            for e in chrome_trace(tracer.to_dicts())["traceEvents"]
            if e["ph"] != "M"
        ]
        assert [e["name"] for e in body] == ["b.second", "a.first", "c.third"]
        assert [e["args"]["span_id"] for e in body] == [1, 2, 3]

    def test_tracks_from_attrs_in_sorted_order(self):
        tracer = Tracer()
        tracer.instant("x", 1.0, host="zeta")
        tracer.instant("y", 2.0, src="alpha")
        tracer.instant("z", 3.0)  # no track attr: default "trace" track
        doc = chrome_trace(tracer.to_dicts())
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert names == ["alpha", "trace", "zeta"]

    def test_non_json_attrs_are_stringified(self):
        spans = [
            {
                "span_id": 1,
                "parent_id": None,
                "name": "weird",
                "start_us": 0.0,
                "end_us": 1.0,
                "attrs": {"nan": float("nan"), "obj": (1, 2)},
            }
        ]
        payload = chrome_trace_bytes(spans)  # allow_nan=False must not trip
        doc = json.loads(payload.decode("utf-8"))
        validate_chrome_trace(doc)
        (event,) = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert event["args"]["nan"] == "nan"
        assert event["args"]["obj"] == "(1, 2)"


class TestValidate:
    def test_rejects_non_document(self):
        with pytest.raises(ExportError):
            validate_chrome_trace([])

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "B", "pid": 1, "tid": 1, "name": "x"}]}
        with pytest.raises(ExportError):
            validate_chrome_trace(doc)

    def test_rejects_complete_event_without_duration(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": 0.0}
            ]
        }
        with pytest.raises(ExportError):
            validate_chrome_trace(doc)

    def test_rejects_instant_without_scope(self):
        doc = {
            "traceEvents": [
                {"ph": "i", "pid": 1, "tid": 1, "name": "x", "ts": 0.0}
            ]
        }
        with pytest.raises(ExportError):
            validate_chrome_trace(doc)

    def test_rejects_negative_duration(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": 0.0, "dur": -1.0}
            ]
        }
        with pytest.raises(ExportError):
            validate_chrome_trace(doc)


class TestLoadSpans:
    def test_session_file_round_trip(self, tmp_path):
        tracer = _golden_tracer()
        path = write_session(str(tmp_path / "session.json"), tracer, label="t")
        assert load_spans(path) == tracer.to_dicts()

    def test_session_doc_shape(self):
        doc = session_doc(_golden_tracer(), label="smoke")
        assert doc["kind"] == "repro.obs.trace-session"
        assert doc["label"] == "smoke"
        assert len(doc["spans"]) == 3

    def test_bare_list_and_postmortem_shapes(self, tmp_path):
        spans = _golden_tracer().to_dicts()
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(spans))
        assert load_spans(str(bare)) == spans
        postmortem = tmp_path / "pm.json"
        postmortem.write_text(json.dumps({"kind": "whatever", "spans": spans}))
        assert load_spans(str(postmortem)) == spans

    def test_rejects_documents_without_spans(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ExportError):
            load_spans(str(path))

    def test_rejects_malformed_span_entries(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"name": "no-id"}]))
        with pytest.raises(ExportError):
            load_spans(str(path))

    def test_rejects_invalid_json_and_missing_files(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ExportError):
            load_spans(str(path))
        with pytest.raises(ExportError):
            load_spans(str(tmp_path / "absent.json"))


class TestCli:
    def test_export_round_trip(self, tmp_path, capsys):
        tracer = _golden_tracer()
        session = write_session(str(tmp_path / "session.json"), tracer)
        out = tmp_path / "TRACE.json"
        assert main([session, "-o", str(out), "--process-name", "golden"]) == 0
        assert out.read_bytes() == GOLDEN
        assert "wrote" in capsys.readouterr().out

    def test_stdout_mode_emits_the_canonical_payload(self, tmp_path, capsys):
        session = write_session(str(tmp_path / "session.json"), _golden_tracer())
        assert main([session, "--process-name", "golden"]) == 0
        assert capsys.readouterr().out.encode("utf-8") == GOLDEN

    def test_bad_input_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main([str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_write_chrome_trace_helper(self, tmp_path):
        path = write_chrome_trace(
            str(tmp_path / "t.json"),
            _golden_tracer().to_dicts(),
            process_name="golden",
        )
        with open(path, "rb") as fh:
            assert fh.read() == GOLDEN
