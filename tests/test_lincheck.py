"""Tests for the linearizability checker, plus a nemesis-style
end-to-end consistency check of the Sift KV store under failover."""


from repro.bench.lincheck import DELETE, GET, PUT, History, Op, check_history, check_key_history
from repro.core import SiftGroup
from repro.kv import KvClient, KvConfig, kv_app_factory
from repro.kv.client import KvRequestFailed
from repro.net import Fabric
from repro.sim import MS, SEC, Simulator


def op(kind, value, t0, t1, key=b"k"):
    return Op(key, kind, value, t0, t1)


class TestChecker:
    def test_simple_sequential_history(self):
        ops = [
            op(PUT, b"a", 0, 1),
            op(GET, b"a", 2, 3),
            op(PUT, b"b", 4, 5),
            op(GET, b"b", 6, 7),
        ]
        assert check_key_history(ops)

    def test_stale_read_rejected(self):
        ops = [
            op(PUT, b"a", 0, 1),
            op(PUT, b"b", 2, 3),
            op(GET, b"a", 4, 5),  # must see b
        ]
        assert not check_key_history(ops)

    def test_concurrent_put_get_either_order(self):
        ops = [
            op(PUT, b"new", 0, 10),
            op(GET, None, 1, 2),  # overlaps the put: may see the old value
        ]
        assert check_key_history(ops)
        ops2 = [
            op(PUT, b"new", 0, 10),
            op(GET, b"new", 1, 2),  # or the new one
        ]
        assert check_key_history(ops2)

    def test_read_of_never_written_value_rejected(self):
        assert not check_key_history([op(GET, b"ghost", 0, 1)])

    def test_initial_value(self):
        assert check_key_history([op(GET, b"seed", 0, 1)], initial=b"seed")

    def test_delete_semantics(self):
        ops = [
            op(PUT, b"x", 0, 1),
            op(DELETE, None, 2, 3),
            op(GET, None, 4, 5),
        ]
        assert check_key_history(ops)
        bad = [
            op(PUT, b"x", 0, 1),
            op(DELETE, None, 2, 3),
            op(GET, b"x", 4, 5),  # resurrected value
        ]
        assert not check_key_history(bad)

    def test_unacked_put_may_or_may_not_apply(self):
        pending_applied = [
            op(PUT, b"v1", 0, 1),
            op(PUT, b"v2", 2, None),  # no response observed
            op(GET, b"v2", 10, 11),
        ]
        assert check_key_history(pending_applied)
        pending_dropped = [
            op(PUT, b"v1", 0, 1),
            op(PUT, b"v2", 2, None),
            op(GET, b"v1", 10, 11),
        ]
        assert check_key_history(pending_dropped)

    def test_flip_flop_rejected(self):
        """A value cannot be observed, disappear, then reappear without
        an intervening write."""
        ops = [
            op(PUT, b"a", 0, 1),
            op(PUT, b"b", 2, 3),
            op(GET, b"b", 4, 5),
            op(GET, b"a", 6, 7),
            op(GET, b"b", 8, 9),
        ]
        assert not check_key_history(ops)

    def test_keys_checked_independently(self):
        history = History()
        history.record(op(PUT, b"1", 0, 1, key=b"a"))
        history.record(op(PUT, b"2", 0, 1, key=b"b"))
        history.record(op(GET, b"1", 2, 3, key=b"a"))
        history.record(op(GET, b"2", 2, 3, key=b"b"))
        ok, offender = check_history(history)
        assert ok and offender is None

    def test_offending_key_reported(self):
        history = History()
        history.record(op(PUT, b"1", 0, 1, key=b"a"))
        history.record(op(GET, b"zzz", 2, 3, key=b"b"))
        ok, offender = check_history(history)
        assert not ok and offender == b"b"


class TestNemesis:
    def test_kv_history_linearizable_across_coordinator_crash(self):
        """Concurrent clients + a coordinator crash: the full observed
        history must stay (per-key) linearizable."""
        sim = Simulator()
        fabric = Fabric(sim)
        kv_config = KvConfig(max_keys=128, wal_entries=64)
        group = SiftGroup(
            fabric,
            kv_config.sift_config(fm=1, fc=1, wal_entries=64),
            name="nemesis",
            app_factory=kv_app_factory(kv_config),
        )
        group.start()
        history = History()

        def client_loop(tag):
            host = fabric.add_host(f"nc{tag}", cores=2)
            client = KvClient(host, fabric, group)
            rng = fabric.rng.stream(f"nemesis:{tag}")
            for round_number in range(25):
                key = b"key-%d" % rng.randrange(4)
                if rng.random() < 0.5:
                    value = b"%d:%d" % (tag, round_number)
                    invoked = sim.now
                    try:
                        yield from client.put(key, value)
                        history.record(Op(key, PUT, value, invoked, sim.now))
                    except KvRequestFailed:
                        history.record(Op(key, PUT, value, invoked, None))
                else:
                    invoked = sim.now
                    try:
                        got = yield from client.get(key)
                        history.record(Op(key, GET, got, invoked, sim.now))
                    except KvRequestFailed:
                        pass  # a failed read constrains nothing

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            workers = [sim.spawn(client_loop(tag)) for tag in range(4)]
            yield sim.timeout(15 * MS)
            group.crash_coordinator()
            for worker in workers:
                yield worker
            return True

        process = sim.spawn(scenario())
        sim.run_until_settled(process, deadline=120 * SEC)
        assert process.settled and process.ok, getattr(process, "exception", None)
        ok, offender = check_history(history)
        assert ok, f"history not linearizable for key {offender!r}"
        assert len(history.ops) > 50  # the run actually exercised traffic
