"""Unit tests for KV layout geometry and codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.membership import RESERVED_BYTES
from repro.kv.config import KvConfig
from repro.kv.layout import (
    BLOCK_HEADER_BYTES,
    KV_WAL_OFFSET,
    OP_DELETE,
    OP_PUT,
    BlockImage,
    KvLayout,
    WalRecord,
)


@pytest.fixture
def config():
    return KvConfig(max_keys=1024, wal_entries=256)


@pytest.fixture
def layout(config):
    return KvLayout(config)


class TestConfig:
    def test_paper_defaults(self):
        config = KvConfig()
        assert config.max_keys == 1_000_000
        assert config.key_bytes == 32
        assert config.value_bytes == 992
        assert config.cache_entries == 500_000
        assert config.wal_entries == 64 * 1024

    def test_index_load_factor(self, config):
        """Buckets chosen so load never exceeds 12.5% (§6.2)."""
        assert config.max_keys / config.index_buckets <= 0.125
        assert config.index_buckets & (config.index_buckets - 1) == 0  # power of 2

    def test_block_size(self, config):
        assert config.block_bytes == BLOCK_HEADER_BYTES + 32 + 992

    def test_sift_config_direct_window_covers_wal(self, config):
        sift = config.sift_config(fm=1, erasure_coding=True)
        layout = KvLayout(config)
        assert sift.direct_bytes == layout.direct_bytes
        assert sift.direct_bytes >= layout.wal_offset + config.wal_entries * layout.wal_slot_bytes
        assert sift.data_bytes == layout.data_bytes
        sift.validate()


class TestGeometry:
    def test_regions_are_ordered_and_disjoint(self, layout):
        assert KV_WAL_OFFSET >= RESERVED_BYTES
        assert layout.index_offset == layout.direct_bytes
        assert layout.bitmap_offset == layout.index_offset + layout.index_bytes
        assert layout.blocks_offset == layout.bitmap_offset + layout.bitmap_bytes
        assert layout.data_bytes == layout.blocks_offset + 1024 * layout.block_bytes

    def test_structures_block_aligned(self, layout):
        block = layout.block_bytes
        assert layout.direct_bytes % block == 0
        assert layout.index_bytes % block == 0
        assert layout.bitmap_bytes % block == 0

    def test_wal_slot_addresses_are_circular(self, layout, config):
        assert layout.wal_slot_addr(1) == layout.wal_offset
        assert layout.wal_slot_addr(1 + config.wal_entries) == layout.wal_offset

    def test_wal_seq_starts_at_one(self, layout):
        with pytest.raises(ValueError):
            layout.wal_slot_addr(0)

    def test_block_addr_roundtrip(self, layout):
        for number in (0, 1, 500, 1023):
            assert layout.block_number(layout.block_addr(number)) == number

    def test_block_addr_range_checked(self, layout):
        with pytest.raises(ValueError):
            layout.block_addr(1024)
        with pytest.raises(ValueError):
            layout.block_number(layout.blocks_offset + 13)

    def test_bucket_of_uniform_and_stable(self, layout, config):
        buckets = [layout.bucket_of(b"key%d" % i) for i in range(1000)]
        assert all(0 <= b < config.index_buckets for b in buckets)
        assert buckets == [layout.bucket_of(b"key%d" % i) for i in range(1000)]


class TestBlockCodec:
    def test_roundtrip(self, layout):
        image = BlockImage(next_ptr=12345, key=b"key", value=b"value")
        raw = layout.encode_block(image)
        assert len(raw) == layout.block_bytes
        assert layout.decode_block(raw) == image

    def test_max_sizes(self, layout, config):
        image = BlockImage(0, b"k" * config.key_bytes, b"v" * config.value_bytes)
        assert layout.decode_block(layout.encode_block(image)) == image

    def test_oversize_rejected(self, layout, config):
        with pytest.raises(ValueError):
            layout.encode_block(BlockImage(0, b"k" * (config.key_bytes + 1), b""))
        with pytest.raises(ValueError):
            layout.encode_block(BlockImage(0, b"k", b"v" * (config.value_bytes + 1)))

    def test_garbage_lengths_decode_none(self, layout):
        raw = bytearray(layout.block_bytes)
        raw[8:10] = (60_000).to_bytes(2, "little")  # absurd key_len
        assert layout.decode_block(bytes(raw)) is None

    def test_short_buffer_decodes_none(self, layout):
        assert layout.decode_block(b"short") is None

    @given(
        next_ptr=st.integers(0, 2**62),
        key=st.binary(min_size=1, max_size=32),
        value=st.binary(max_size=992),
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, next_ptr, key, value):
        layout = KvLayout(KvConfig(max_keys=64, wal_entries=16))
        image = BlockImage(next_ptr, key, value)
        assert layout.decode_block(layout.encode_block(image)) == image


class TestWalRecordCodec:
    def test_put_roundtrip(self, layout):
        record = WalRecord(9, OP_PUT, b"key", b"value", term=4)
        assert layout.decode_wal_record(layout.encode_wal_record(record)) == record

    def test_delete_roundtrip(self, layout):
        record = WalRecord(10, OP_DELETE, b"key", b"", term=2)
        assert layout.decode_wal_record(layout.encode_wal_record(record)) == record

    def test_empty_slot_decodes_none(self, layout):
        assert layout.decode_wal_record(bytes(layout.wal_slot_bytes)) is None

    def test_corruption_detected(self, layout):
        raw = bytearray(layout.encode_wal_record(WalRecord(3, OP_PUT, b"k", b"v", 1)))
        raw[-1] ^= 0x40
        assert layout.decode_wal_record(bytes(raw)) is None

    def test_bad_opcode_decodes_none(self, layout):
        raw = bytearray(layout.encode_wal_record(WalRecord(3, OP_PUT, b"k", b"v", 1)))
        raw[12] = 99  # op byte
        assert layout.decode_wal_record(bytes(raw)) is None

    @given(
        seq=st.integers(1, 2**62),
        term=st.integers(0, 2**32 - 1),
        op=st.sampled_from([OP_PUT, OP_DELETE]),
        key=st.binary(min_size=1, max_size=32),
        value=st.binary(max_size=992),
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, seq, term, op, key, value):
        layout = KvLayout(KvConfig(max_keys=64, wal_entries=16))
        record = WalRecord(seq, op, key, value, term)
        assert layout.decode_wal_record(layout.encode_wal_record(record)) == record
