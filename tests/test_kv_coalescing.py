"""WAL-append coalescing (§4 amortization on the hot path).

With ``KvConfig.coalesce_appends`` on, concurrent puts hand their
encoded WAL images to a flusher that merges contiguous-sequence runs
into one replicated extent write.  The contract: observable KV state
and error semantics are exactly those of the per-record path — only
the number of replicated writes (and hence simulated commit timing)
changes.
"""

from repro.core import SiftGroup
from repro.kv import KvClient, KvConfig, kv_app_factory
from repro.kv.layout import OP_PUT, WalRecord
from repro.net import Fabric
from repro.sim import SEC, Event, Simulator


def make_stack(coalesce=True, seed=1, **kv_extra):
    sim = Simulator()
    fabric = Fabric(sim)
    kv_kwargs = dict(
        max_keys=512,
        wal_entries=128,
        watermark_interval=32,
        coalesce_appends=coalesce,
    )
    kv_kwargs.update(kv_extra)
    kv_config = KvConfig(**kv_kwargs)
    sift_config = kv_config.sift_config(fm=1, fc=1, wal_entries=256)
    group = SiftGroup(fabric, sift_config, name="kv", app_factory=kv_app_factory(kv_config))
    group.start()
    client = KvClient(fabric.add_host("client", cores=4), fabric, group)
    return sim, fabric, group, client


def run(sim, gen, until=60 * SEC):
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled, "scenario did not finish"
    if process.failed:
        raise process.exception
    return process.value


def _burst(fabric, group, n_clients, puts_each):
    """Spawn *n_clients* concurrent writers; returns their processes."""
    sim = fabric.sim
    procs = []
    for c in range(n_clients):
        client = KvClient(fabric.add_host(f"w{c}", cores=2), fabric, group)

        def writer(client=client, c=c):
            for i in range(puts_each):
                yield from client.put(b"k%d-%d" % (c, i), b"v%d" % i)

        procs.append(sim.spawn(writer(), name=f"writer{c}"))
    return procs


class TestCoalescedDataPath:
    def test_put_get_roundtrip(self):
        sim, _f, group, client = make_stack()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from client.put(b"k", b"v")
            yield from client.put(b"k", b"v2")
            return (yield from client.get(b"k"))

        assert run(sim, scenario()) == b"v2"

    def test_concurrent_burst_coalesces_and_stays_correct(self):
        """Under write pressure batches actually form, and every put
        remains readable afterwards."""
        sim, fabric, group, client = make_stack()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            for proc in _burst(fabric, group, n_clients=6, puts_each=8):
                yield proc
            values = []
            for c in range(6):
                for i in range(8):
                    values.append((yield from client.get(b"k%d-%d" % (c, i))))
            return values

        values = run(sim, scenario())
        assert values == [b"v%d" % i for _c in range(6) for i in range(8)]
        store = group.serving_coordinator().app
        assert store.stats["puts"] == 48
        assert store.stats.get("coalesced_appends", 0) > 0

    def test_same_final_state_as_per_record_path(self):
        """Coalescing may change timings but never what the store ends
        up holding."""

        def final_state(coalesce):
            sim, fabric, group, client = make_stack(coalesce=coalesce)

            def scenario():
                yield from group.wait_until_serving(timeout_us=2 * SEC)
                for proc in _burst(fabric, group, n_clients=4, puts_each=6):
                    yield proc
                state = []
                for c in range(4):
                    for i in range(6):
                        state.append((yield from client.get(b"k%d-%d" % (c, i))))
                return state

            return run(sim, scenario())

        assert final_state(True) == final_state(False)

    def test_deterministic_across_runs(self):
        """Same seed, same schedule: the coalesced path must not leak
        host nondeterminism into simulated time or stats."""

        def observe():
            sim, fabric, group, _client = make_stack()

            def scenario():
                yield from group.wait_until_serving(timeout_us=2 * SEC)
                for proc in _burst(fabric, group, n_clients=5, puts_each=10):
                    yield proc

            run(sim, scenario())
            store = group.serving_coordinator().app
            return sim.now, dict(store.stats)

        assert observe() == observe()

    def test_off_by_default(self):
        assert KvConfig().coalesce_appends is False
        sim, _f, group, client = make_stack(coalesce=False)

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from client.put(b"k", b"v")

        run(sim, scenario())
        store = group.serving_coordinator().app
        assert "coalesced_appends" not in store.stats


class TestFlusherExtents:
    """White-box: drive the flusher directly with forged queues."""

    def _serving_store(self, make=make_stack):
        sim, _f, group, _client = make()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)

        run(sim, scenario())
        return sim, group.serving_coordinator().app

    def _enqueue(self, store, seqs):
        dones = []
        for seq in seqs:
            record = WalRecord(seq, OP_PUT, b"key%d" % seq, b"val", store.repmem.term)
            image = store.layout.encode_wal_record(record)
            done = Event(store.sim)
            store._pending_appends.append((record, image, done))
            dones.append(done)
        store._append_flusher_busy = True
        store.host.spawn(store._append_flusher(), name="test-flusher")
        return dones

    def _drain(self, sim, dones):
        def scenario():
            for done in dones:
                try:
                    yield done
                except Exception:
                    pass

        run(sim, scenario())

    def test_contiguous_run_is_one_extent(self):
        sim, store = self._serving_store()
        dones = self._enqueue(store, [50, 51, 52, 53])
        self._drain(sim, dones)
        assert all(done.ok for done in dones)
        assert store.stats["coalesced_appends"] == 3

    def test_gap_splits_extents(self):
        sim, store = self._serving_store()
        dones = self._enqueue(store, [50, 51, 60, 61])
        self._drain(sim, dones)
        assert all(done.ok for done in dones)
        assert store.stats["coalesced_appends"] == 2  # (2-1) + (2-1)

    def test_ring_wrap_splits_extents(self):
        """wal_entries=128: seq 129 lands back on slot 0, so a run
        crossing the wrap must become two extent writes — one straight
        line per address range."""
        sim, store = self._serving_store()
        assert store.config.wal_entries == 128
        dones = self._enqueue(store, [127, 128, 129, 130])
        self._drain(sim, dones)
        assert all(done.ok for done in dones)
        assert store.stats["coalesced_appends"] == 2  # [127,128] + [129,130]
        assert store.layout.wal_slot_addr(129) < store.layout.wal_slot_addr(128)

    def test_batches_bounded_by_coalesce_max(self):
        sim, store = self._serving_store(
            lambda: make_stack(coalesce_max=4))
        dones = self._enqueue(store, list(range(40, 46)))  # 6 contiguous
        self._drain(sim, dones)
        assert all(done.ok for done in dones)
        # First flush takes 4 (one extent), second takes the trailing 2.
        assert store.stats["coalesced_appends"] == 3 + 1

    def test_failed_extent_fails_only_its_records(self):
        sim, store = self._serving_store()
        fail_addr = store.layout.wal_slot_addr(50)
        original = store.repmem.direct_write

        def flaky(addr, data):
            if addr == fail_addr:
                raise RuntimeError("injected extent fault")
            return (yield from original(addr, data))

        store.repmem.direct_write = flaky
        dones = self._enqueue(store, [50, 51, 60, 61])
        self._drain(sim, dones)
        assert dones[0].failed and dones[1].failed
        assert isinstance(dones[0].exception, RuntimeError)
        assert dones[2].ok and dones[3].ok

    def test_padding_lands_records_on_slot_boundaries(self):
        """Every record in a merged extent must decode from its own
        slot address afterwards."""
        sim, store = self._serving_store()
        seqs = [70, 71, 72]
        dones = self._enqueue(store, seqs)
        self._drain(sim, dones)
        memnode = next(iter(store.repmem.qps))
        region = store.repmem.qps[memnode].listener.lookup("repmem")
        raw_extent = store.repmem.amap.raw_extent
        for seq in seqs:
            image = region.read(
                raw_extent(store.layout.wal_slot_addr(seq)),
                store.layout.wal_slot_bytes,
            )
            record = store.layout.decode_wal_record(image)
            assert record is not None and record.seq == seq
            assert record.key == b"key%d" % seq
