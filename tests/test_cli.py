"""Tests for the experiment CLI (cheap commands only)."""

import os

import pytest

from repro.bench.cli import main
from repro.obs.artifact import load_artifact


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1", "--no-artifact"]) == 0
        out = capsys.readouterr().out
        assert "Sift" in out and "Disk Paxos" in out

    def test_table2(self, capsys):
        assert main(["table2", "--no-artifact"]) == 0
        out = capsys.readouterr().out
        assert "10 cores" in out and "22 GB" in out

    def test_fig9_and_fig10(self, capsys, tmp_path):
        assert main(["fig9", "fig10", "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "F=1" in out and "F=2" in out
        assert "-35" in out and "-56" in out
        # Every figure driver leaves a validated artifact behind.
        fig9 = load_artifact(str(tmp_path / "BENCH_fig9.json"))
        assert fig9["figure"] == "fig9"
        assert fig9["simulated"]["aws"]
        assert os.path.exists(tmp_path / "BENCH_fig10.json")

    def test_no_artifact_flag(self, capsys, tmp_path):
        assert main(["fig9", "--no-artifact", "--out-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert not os.path.exists(tmp_path / "BENCH_fig9.json")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_no_experiments_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_throughput_smoke(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_KEYS", "512")
        monkeypatch.setenv("REPRO_BENCH_MEASURE_MS", "20")
        monkeypatch.setenv("REPRO_BENCH_WARMUP_MS", "10")
        monkeypatch.setenv("REPRO_BENCH_CLIENTS", "4")
        assert main(
            ["throughput", "--system", "raft-r", "--out-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "ops/s" in out
        doc = load_artifact(str(tmp_path / "BENCH_throughput.json"))
        assert doc["seeds"] == [1]
        assert doc["params"]["system"] == "raft-r"
        assert doc["params"]["scale"]["keys"] == 512
        assert doc["simulated"]["ops_per_sec"] > 0
        # The registry snapshot rode along: wire traffic was counted.
        assert any(
            k.startswith("net.messages") for k in doc["registry"]["counters"]
        )
        assert doc["registry"]["gauges"]["bench.throughput_ops"] > 0
