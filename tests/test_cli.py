"""Tests for the experiment CLI (cheap commands only)."""

import pytest

from repro.bench.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Sift" in out and "Disk Paxos" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "10 cores" in out and "22 GB" in out

    def test_fig9_and_fig10(self, capsys):
        assert main(["fig9", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "F=1" in out and "F=2" in out
        assert "-35" in out and "-56" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_throughput_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_KEYS", "512")
        monkeypatch.setenv("REPRO_BENCH_MEASURE_MS", "20")
        monkeypatch.setenv("REPRO_BENCH_WARMUP_MS", "10")
        monkeypatch.setenv("REPRO_BENCH_CLIENTS", "4")
        assert main(["throughput", "--system", "raft-r"]) == 0
        out = capsys.readouterr().out
        assert "ops/s" in out
