"""Tests for the sharded KV service (repro.shard).

Covers the ISSUE's required cases: shard-routing stability (the ring is
a pure function of the shard names, so a restarted process routes every
key identically), coordinator failover drawing replacements from the
live backup pool, and pool-exhaustion waits matching the
:class:`repro.cluster.backups.PoolAccountant` heap model per fault.
"""

import pytest

from repro.cluster.backups import PoolAccountant
from repro.shard import HashRing, ShardRouter, ShardedKvService
from repro.sim import MS, SEC, Simulator
from repro.net import Fabric
from repro.sim.rng import RngStreams
from repro.workloads import StripedZipfSampler


def make_service(shards=2, backups=1, provisioning_delay_us=2 * SEC, seed=7, **kw):
    sim = Simulator()
    fabric = Fabric(sim, rng=RngStreams(seed=seed))
    service = ShardedKvService(
        fabric,
        shards=shards,
        backups=backups,
        provisioning_delay_us=provisioning_delay_us,
        **kw,
    )
    service.start()
    return sim, fabric, service


def run(sim, gen, until=300 * SEC):
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled
    if process.failed:
        raise process.exception
    return process.value


class TestHashRing:
    def test_same_key_same_shard_across_instances(self):
        """The ring hashes shard names with SHA-1, not Python's salted
        hash(): two independently built rings agree on every key."""
        names = ["shard0", "shard1", "shard2"]
        a, b = HashRing(names), HashRing(names)
        keys = [b"key%018d.0000" % i for i in range(500)]
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]

    def test_construction_order_irrelevant(self):
        keys = [b"k%d" % i for i in range(200)]
        forward = HashRing(["a", "b", "c"])
        backward = HashRing(["c", "b", "a"])
        assert [forward.shard_for(k) for k in keys] == [
            backward.shard_for(k) for k in keys
        ]

    def test_spread_is_roughly_balanced(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        counts = ring.spread(b"key%018d.0000" % i for i in range(4000))
        assert set(counts) == {f"s{i}" for i in range(4)}
        assert min(counts.values()) > 400  # no shard starved

    def test_adding_a_shard_moves_a_minority_of_keys(self):
        keys = [b"key%d" % i for i in range(2000)]
        before = HashRing(["s0", "s1", "s2"])
        after = HashRing(["s0", "s1", "s2", "s3"])
        moved = sum(
            1 for k in keys if before.shard_for(k) != after.shard_for(k)
        )
        assert 0 < moved < len(keys) // 2

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])

    def test_shard_index_batch_matches_shard_for(self):
        """The vectorized lookup (joined SHA-1 digests, one
        searchsorted) agrees with the scalar ring walk key by key."""
        ring = HashRing([f"s{i}" for i in range(5)])
        keys = [b"key%018d.%04d" % (i, i % 7) for i in range(1000)]
        owners = ring.shard_index_batch(keys)
        assert [ring.shards[i] for i in owners] == [
            ring.shard_for(k) for k in keys
        ]

    def test_shard_index_batch_empty(self):
        ring = HashRing(["a", "b"])
        assert len(ring.shard_index_batch([])) == 0


class TestRouting:
    def test_router_sends_each_key_to_its_ring_shard(self):
        sim, fabric, service = make_service(shards=3)
        router = ShardRouter(fabric.add_host("client", cores=2), fabric, service)

        def scenario():
            yield from service.wait_until_serving(timeout_us=10 * SEC)
            for i in range(30):
                key = b"route-%d" % i
                yield from router.put(key, b"v%d" % i)
            for i in range(30):
                value = yield from router.get(b"route-%d" % i)
                assert value == b"v%d" % i

        run(sim, scenario())
        # Every key went through the client owned by its ring shard, and
        # more than one shard saw traffic.
        per_shard = {
            name: client.stats["requests"] for name, client in router.clients.items()
        }
        assert sum(per_shard.values()) == router.stats["requests"] == 60
        assert sum(1 for n in per_shard.values() if n > 0) >= 2

    def test_routing_stable_across_service_restart(self):
        """A rebuilt service (fresh process, fresh fabric) owns every
        key on the same shard, so clients never need remapping."""
        keys = [b"stable-%d" % i for i in range(100)]
        _, _, first = make_service(shards=3, seed=1)
        mapping = {k: first.shard_for(k) for k in keys}
        _, _, second = make_service(shards=3, seed=99)
        assert {k: second.shard_for(k) for k in keys} == mapping


class TestFailover:
    def test_coordinator_failover_draws_from_live_pool(self):
        sim, fabric, service = make_service(shards=2, backups=1)
        router = ShardRouter(fabric.add_host("client", cores=2), fabric, service)

        def scenario():
            yield from service.wait_until_serving(timeout_us=10 * SEC)
            yield from router.put(b"survivor", b"before-crash")
            shard = service.shard_for(b"survivor")
            service.crash_coordinator(shard)
            value = yield from router.get(b"survivor")
            return shard, value

        shard, value = run(sim, scenario())
        assert value == b"before-crash"
        assert service.pool.promotions == 1
        promo = service.pool.promotion_log[0]
        assert promo.group == shard
        # The promoted pool VM is now a member of the failed group.
        members = [n.host.name for n in service._group(shard).cpu_nodes]
        assert promo.host in members

    def test_idle_spare_promotes_without_wait(self):
        sim, fabric, service = make_service(shards=2, backups=2)

        def scenario():
            yield from service.wait_until_serving(timeout_us=10 * SEC)
            service.crash_coordinator(service.groups[0].name)
            yield from service.wait_until_serving(timeout_us=10 * SEC)

        run(sim, scenario())
        assert service.pool.promotions == 1
        assert service.pool.waits == 0
        assert service.pool.promotion_log[0].wait_us == 0.0


class TestPoolExhaustion:
    def test_exhaustion_waits_match_accountant(self):
        """Crash coordinators faster than the pool re-provisions; each
        promotion's wait must equal the PoolAccountant heap model
        replayed at the same request times."""
        delay_us = 1.5 * SEC
        sim, fabric, service = make_service(
            shards=2, backups=1, provisioning_delay_us=delay_us
        )

        def scenario():
            yield from service.wait_until_serving(timeout_us=10 * SEC)
            base = sim.now
            for fault in range(3):
                target = service.groups[fault % 2]
                yield sim.timeout(base + (fault + 1) * 0.4 * SEC - sim.now)
                yield from target.wait_until_serving(timeout_us=10 * SEC)
                service.crash_coordinator(target.name)
            while service.pool.promotions < 3:
                yield sim.timeout(50 * MS)
            yield from service.wait_until_serving(timeout_us=20 * SEC)

        run(sim, scenario())
        accountant = PoolAccountant(backups=1, provision_s=delay_us / 1e6)
        model_waits = [
            accountant.fault(promo.request_us / 1e6)
            for promo in service.pool.promotion_log
        ]
        live_waits = [p.wait_us / 1e6 for p in service.pool.promotion_log]
        assert live_waits == pytest.approx(model_waits, abs=1e-6)
        assert service.pool.waits == accountant.waits
        assert service.pool.waits >= 1  # the gap really exhausted the pool
        assert service.pool.recovery_wait_us_per_fault() == pytest.approx(
            accountant.total_extra_s * 1e6 / 3, abs=1.0
        )

    def test_zero_capacity_pool_charges_full_delay(self):
        delay_us = 1 * SEC
        sim, fabric, service = make_service(
            shards=2, backups=0, provisioning_delay_us=delay_us
        )

        def scenario():
            yield from service.wait_until_serving(timeout_us=10 * SEC)
            service.crash_coordinator(service.groups[0].name)
            yield from service.wait_until_serving(timeout_us=20 * SEC)

        run(sim, scenario())
        assert service.pool.promotions == 1
        assert service.pool.promotion_log[0].wait_us == pytest.approx(delay_us)
        model = PoolAccountant(backups=0, provision_s=delay_us / 1e6)
        assert model.fault(0.0) == pytest.approx(delay_us / 1e6)


class TestChaosIntegration:
    def test_chaos_runner_drives_sharded_service(self):
        """ChaosRunner dispatches to ShardedAdapter, routes its workload
        through a ShardRouter, and the history stays linearizable while
        the pool replaces a crashed coordinator."""
        from repro.chaos import ChaosRunner, FaultSchedule, adapter_for
        from repro.kv import KvConfig

        def build(fabric):
            service = ShardedKvService(
                fabric,
                shards=2,
                backups=1,
                kv_config=KvConfig(
                    max_keys=256, wal_entries=128, watermark_interval=32
                ),
                provisioning_delay_us=1 * SEC,
            )
            service.start()
            return service

        # Index 0 of the flattened node list is shard 0's coordinator.
        schedule = FaultSchedule().crash_node(200 * MS, 0)
        runner = ChaosRunner(build, schedule, seed=3)
        result = runner.run()
        adapter = adapter_for(runner.cluster)
        assert adapter.kind == "sharded"
        assert not adapter.leader_based
        assert runner.cluster.pool.promotions == 1
        assert result.acked_puts > 0


class TestCommittedBaseline:
    def test_fig8live_baseline_agrees_with_trace_model(self):
        """The committed fig8live artifact must show the live pool
        agreeing with the PoolAccountant trace model on every point and
        every repetition's waits matching exactly."""
        import json
        import pathlib

        path = (
            pathlib.Path(__file__).resolve().parents[1]
            / "benchmarks"
            / "baselines"
            / "BENCH_fig8live.json"
        )
        doc = json.loads(path.read_text())
        assert doc["figure"] == "fig8live"
        points = doc["simulated"]
        assert points  # at least one shard count
        for name, point in points.items():
            assert point["agrees"], f"{name} disagrees in committed baseline"
            assert (
                abs(point["live_per_fault_us"] - point["model_per_fault_us"])
                <= point["tolerance_us"]
            )
            for rep in point["repetitions"]:
                assert rep["live_waits"] == rep["model_waits"]
                assert rep["promotions"] == len(rep["crash_times_us"])


class TestStripedSampler:
    def test_keys_stripe_round_robin_over_shards(self):
        _, _, service = make_service(shards=3)
        sampler = StripedZipfSampler(60, service.ring)
        shards = [g.name for g in service.groups]
        for rank in range(60):
            key = sampler.key(rank)
            assert service.shard_for(key) == shards[rank % 3]
