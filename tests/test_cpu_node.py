"""Focused CPU-node behaviours not covered by the election scenarios."""

import pytest

from repro.core import Role, SiftConfig, SiftGroup
from repro.net import Fabric
from repro.sim import MS, SEC, Simulator
from repro.storage.admin import AdminWord
from repro.storage.memory_node import ADMIN_WORD_OFFSET


def make_group(**overrides):
    sim = Simulator()
    fabric = Fabric(sim)
    defaults = dict(fm=1, fc=1, data_bytes=64 * 1024, wal_entries=64)
    defaults.update(overrides)
    group = SiftGroup(fabric, SiftConfig(**defaults), name="cn")
    group.start()
    return sim, fabric, group


class TestHeartbeats:
    def test_admin_words_carry_coordinator_identity(self):
        sim, _fabric, group = make_group()
        sim.run(until=300 * MS)
        coordinator = group.coordinator()
        words = [
            AdminWord.unpack(node.admin_region.read_word(ADMIN_WORD_OFFSET))
            for node in group.memory_nodes
        ]
        assert all(word.term_id == coordinator.term for word in words)
        assert all(word.node_id == coordinator.node_id for word in words)

    def test_timestamps_advance(self):
        sim, _fabric, group = make_group()
        sim.run(until=300 * MS)
        node = group.memory_nodes[0]
        first = AdminWord.unpack(node.admin_region.read_word(ADMIN_WORD_OFFSET))
        sim.run(until=sim.now + 50 * MS)
        second = AdminWord.unpack(node.admin_region.read_word(ADMIN_WORD_OFFSET))
        assert second.timestamp != first.timestamp

    def test_lagging_admin_word_reclaimed(self):
        """A memory node that restarts (zeroed admin word) is re-claimed by
        the running coordinator's heartbeat CAS within a few rounds."""
        sim, _fabric, group = make_group()
        sim.run(until=300 * MS)
        coordinator = group.coordinator()
        group.crash_memory_node(2)
        sim.run(until=sim.now + 100 * MS)
        group.restart_memory_node(2)
        sim.run(until=sim.now + 300 * MS)
        word = AdminWord.unpack(
            group.memory_nodes[2].admin_region.read_word(ADMIN_WORD_OFFSET)
        )
        assert word.term_id == coordinator.term
        assert word.node_id == coordinator.node_id


class TestLifecycle:
    def test_deposed_coordinator_tears_down_repmem(self):
        sim, fabric, group = make_group()
        sim.run(until=300 * MS)
        first = group.coordinator()
        repmem = first.repmem
        fabric.isolate(first.host.name)
        sim.run(until=sim.now + 1 * SEC)
        assert first.role is not Role.COORDINATOR
        assert first.repmem is None
        assert not repmem.running

    def test_crash_clears_soft_state(self):
        sim, _fabric, group = make_group()
        sim.run(until=300 * MS)
        coordinator = group.coordinator()
        coordinator.crash()
        assert coordinator.repmem is None
        assert coordinator.app is None
        assert not coordinator.serving

    def test_restart_resets_term(self):
        sim, _fabric, group = make_group()
        sim.run(until=300 * MS)
        coordinator = group.coordinator()
        coordinator.crash()
        coordinator.restart()
        assert coordinator.term == 0  # soft state only (§3.1)
        sim.run(until=sim.now + 1 * SEC)
        assert group.coordinator() is not None

    def test_node_id_zero_rejected(self):
        from repro.core.cpu_node import CpuNode

        sim = Simulator()
        fabric = Fabric(sim)
        with pytest.raises(ValueError):
            CpuNode(fabric, "bad", node_id=0, config=SiftConfig(), memory_nodes=[])

    def test_stats_expose_stepdowns(self):
        sim, fabric, group = make_group()
        sim.run(until=300 * MS)
        first = group.coordinator()
        fabric.isolate(first.host.name)
        sim.run(until=sim.now + 1 * SEC)
        assert first.stats["stepdowns"] >= 1
