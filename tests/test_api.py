"""Tests for the repro.api cluster façade."""

import warnings

import pytest

from repro.api import SYSTEMS, Cluster, ScenarioFailed, system_spec
from repro.errors import ReproError
from repro.kv.client import KvClient, KvRequestFailed
from repro.shard.router import ShardRouter
from repro.sim import MS, SEC


def roundtrip(cluster):
    client = cluster.client()

    def scenario():
        yield from cluster.ready()
        yield from client.put(b"user:42", b"Ada Lovelace")
        value = yield from client.get(b"user:42")
        return value

    return cluster.run(scenario())


class TestBuild:
    def test_sift_roundtrip(self):
        cluster = Cluster.build("sift", seed=7)
        assert roundtrip(cluster) == b"Ada Lovelace"

    def test_sift_ec_roundtrip(self):
        cluster = Cluster.build("sift-ec", seed=7)
        assert roundtrip(cluster) == b"Ada Lovelace"

    def test_sift_recovery_partitions_knob_reaches_the_group(self):
        cluster = Cluster.build("sift", seed=7, recovery_partitions=4)
        assert cluster.inner.config.recovery_partitions == 4
        assert roundtrip(cluster) == b"Ada Lovelace"

    def test_raft_roundtrip(self):
        cluster = Cluster.build("raft-r", seed=7)
        assert roundtrip(cluster) == b"Ada Lovelace"

    def test_epaxos_roundtrip(self):
        cluster = Cluster.build("epaxos", seed=7)
        assert roundtrip(cluster) == b"Ada Lovelace"

    def test_sharded_roundtrip_and_client_type(self):
        cluster = Cluster.build("sharded", seed=7, shards=2, backups=1)
        assert isinstance(cluster.client(), ShardRouter)
        assert roundtrip(cluster) == b"Ada Lovelace"

    def test_non_sharded_client_is_kv_client(self):
        cluster = Cluster.build("sift")
        assert isinstance(cluster.client(), KvClient)

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            system_spec("spanner")
        assert "sharded" in SYSTEMS

    def test_shared_fabric_colocates_two_systems(self):
        first = Cluster.build("sift", seed=3)
        second = Cluster.build("sharded", fabric=first.fabric, shards=2)
        assert second.sim is first.sim
        assert roundtrip(first) == b"Ada Lovelace"
        assert roundtrip(second) == b"Ada Lovelace"


class TestRun:
    def test_wait_ready_and_preload(self):
        cluster = Cluster.build("sift", seed=5)
        cluster.wait_ready()
        cluster.preload([(b"pre:%d" % i, b"v%d" % i) for i in range(10)])
        client = cluster.client()

        def scenario():
            value = yield from client.get(b"pre:3")
            return value

        assert cluster.run(scenario()) == b"v3"

    def test_run_reraises_scenario_exception(self):
        cluster = Cluster.build("sift", seed=5)
        cluster.wait_ready()
        client = cluster.client(request_timeout_us=5 * MS, max_rounds=2)
        for node in list(cluster.inner.cpu_nodes):
            node.crash()

        def scenario():
            yield from client.put(b"k", b"v")

        with pytest.raises(KvRequestFailed) as excinfo:
            cluster.run(scenario())
        # Unified hierarchy: request failures are retryable ReproErrors.
        assert isinstance(excinfo.value, ReproError)
        assert excinfo.value.retryable

    def test_run_flags_unsettled_scenario(self):
        cluster = Cluster.build("sift", seed=5)

        def stall():
            while True:
                yield cluster.sim.timeout(1 * SEC)

        with pytest.raises(ScenarioFailed):
            cluster.run(stall(), deadline_us=2 * SEC)

    def test_run_without_process_advances_time(self):
        cluster = Cluster.build("sift", seed=5)
        target = cluster.sim.now + 1 * SEC
        cluster.run(until=target)
        assert cluster.sim.now == target


class TestDeprecationShims:
    def test_legacy_duration_kwarg_warns_once_and_applies(self):
        cluster = Cluster.build("sift", seed=5)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            client = cluster.client(request_timeout=7 * MS)
        messages = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(messages) == 1
        assert "request_timeout_us" in str(messages[0].message)
        assert client.request_timeout_us == 7 * MS
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cluster.client(request_timeout=7 * MS)  # warned once already
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]
