"""Property suite for the hierarchical timer wheel.

The fast engine's wheel (three 256-slot levels + overflow heap) must be
observationally identical to a plain ``(time, seq)`` min-heap: same
firing order, same virtual times, regardless of which level a delay
lands in, whether slots cascade down from higher levels, or how many
entries were lazily cancelled in place.  These properties drive
generated schedules through the wheel and check the order against the
reference engine (for cancel-free schedules — its heap is the verbatim
pre-wheel implementation) or against an explicit ``(time, seq)`` model
(for schedules with cancellation, which the reference engine cannot
express).  Deterministic tests then pin the sharp edges: slot/page/
horizon boundaries, cancel-then-refire, far-future cascades,
``run(until=...)`` skip-ahead, insort into the loaded batch, and the
sparse-slot absorption window.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import engine, reference

# Exact level boundaries: slot width 1us (L0), 256us (L1), 65536us (L2),
# horizon 2**24us (overflow heap beyond).
BOUNDARIES = [
    1.0, 2.0, 255.0, 256.0, 257.0,
    65_535.0, 65_536.0, 65_537.0,
    16_777_215.0, 16_777_216.0, 16_777_217.0,
]

delays = st.one_of(
    st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
    st.sampled_from(BOUNDARIES),
    st.floats(min_value=0.0, max_value=2.0**25, allow_nan=False),
)


def _trace_of(mod, workload):
    sim = mod.Simulator()
    trace = []

    def mark(tag):
        trace.append((sim.now, tag))

    workload(sim, mark)
    sim.run()
    return trace


def assert_engines_agree(workload):
    fast = _trace_of(engine, workload)
    ref = _trace_of(reference, workload)
    assert fast == ref
    assert fast


# -- generated schedules vs the reference heap -------------------------------


class TestAgainstReferenceEngine:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(delays, min_size=1, max_size=150))
    def test_flat_schedule_order(self, ds):
        """Any mix of delays across all wheel levels and the overflow
        heap fires in exactly the reference heap's (time, seq) order."""

        def workload(sim, mark):
            for i, d in enumerate(ds):
                sim.schedule(d, mark, i)

        assert_engines_agree(workload)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(delays, st.lists(delays, max_size=3)),
                    min_size=1, max_size=40))
    def test_nested_schedule_order(self, spec):
        """Scheduling from inside callbacks — including delays that land
        back in the currently-loaded batch slot or an absorbed slot —
        must still match the reference heap."""

        def workload(sim, mark):
            def fire(i, children):
                mark(i)
                for j, d in enumerate(children):
                    sim.schedule(d, mark, (i, j))

            for i, (d, children) in enumerate(spec):
                sim.schedule(d, fire, i, children)

        assert_engines_agree(workload)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(delays, min_size=1, max_size=80),
           st.sampled_from(BOUNDARIES))
    def test_run_until_skip_ahead_boundaries(self, ds, until):
        """``run(until=...)`` at exact slot/page/horizon boundaries must
        fire the same prefix and land the clock at the same instant on
        both engines, and the remainder must fire identically after."""

        def run_split(mod):
            sim = mod.Simulator()
            trace = []

            def mark(tag):
                trace.append((sim.now, tag))

            for i, d in enumerate(ds):
                sim.schedule(d, mark, i)
            sim.run(until=until)
            trace.append(("clock", sim.now))
            sim.run()
            return trace

        assert run_split(engine) == run_split(reference)


# -- generated schedules with cancellation vs a (time, seq) model ------------


class TestCancellationAgainstModel:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(delays, st.booleans()), min_size=1, max_size=150))
    def test_cancelled_entries_never_fire_order_preserved(self, items):
        """Lazy in-place cancellation (and any compaction it triggers)
        must not disturb the (time, seq) order of the survivors."""
        sim = engine.Simulator()
        fired = []
        handles = []
        for i, (d, _cancel) in enumerate(items):
            handles.append(sim.schedule(d, fired.append, i))
        for (_, cancel), handle in zip(items, handles):
            if cancel:
                assert sim.cancel(handle)
        sim.run()
        expected = sorted(
            (i for i, (_, cancel) in enumerate(items) if not cancel),
            key=lambda i: (items[i][0], i),
        )
        assert fired == expected

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(delays, st.none() | delays),
                    min_size=1, max_size=100))
    def test_cancel_then_refire(self, items):
        """A cancelled timer replaced by a refire — possibly in the same
        slot, possibly past the 2^24us horizon — fires exactly once, at
        the refire's (time, seq) position."""
        sim = engine.Simulator()
        fired = []
        seq = 0
        model = []  # (time, seq, tag) of live entries
        for i, (d, refire) in enumerate(items):
            handle = sim.schedule(d, fired.append, i)
            seq += 1
            if refire is None:
                model.append((d, seq, i))
            else:
                assert sim.cancel(handle)
                sim.schedule(refire, fired.append, (i, "refire"))
                seq += 1
                model.append((refire, seq, (i, "refire")))
        sim.run()
        assert fired == [tag for _, _, tag in sorted(model, key=lambda m: m[:2])]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(delays, min_size=2, max_size=80), st.data())
    def test_cancel_during_run(self, ds, data):
        """Cancelling pending timers from inside a running callback
        (after the wheel has loaded batches and cascaded) still skips
        exactly the cancelled set."""
        sim = engine.Simulator()
        fired = []
        handles = []
        victims = data.draw(st.sets(
            st.integers(min_value=0, max_value=len(ds) - 1), max_size=5))

        def first():
            for v in victims:
                sim.cancel(handles[v])

        sim.schedule(0.0, first)
        for i, d in enumerate(ds):
            handles.append(sim.schedule(d + 1.0, fired.append, i))
        sim.run()
        expected = sorted(
            (i for i in range(len(ds)) if i not in victims),
            key=lambda i: (ds[i] + 1.0, i),
        )
        assert fired == expected


# -- pinned edge cases -------------------------------------------------------


class TestWheelEdges:
    def test_far_future_cascade_through_every_level(self):
        """Entries past the 2^24us horizon start in the overflow heap
        and must cascade L2 -> L1 -> L0 as pages advance, firing at
        exact times in order."""

        def workload(sim, mark):
            for k, d in enumerate([
                2.0**24 + 5.0,            # just past the horizon
                2.0**24 * 3 + 0.25,       # several horizons out
                2.0**25, 2.0**24,         # exact horizon multiples
                123_456_789.5,
            ]):
                sim.schedule(d, mark, k)

        assert_engines_agree(workload)

    def test_exact_boundary_times_fire_in_seq_order(self):
        """Equal times at slot/page boundaries resolve by seq."""

        def workload(sim, mark):
            for rep in range(3):
                for b in BOUNDARIES:
                    sim.schedule(b, mark, (b, rep))

        assert_engines_agree(workload)

    def test_insort_into_loaded_batch(self):
        """A callback scheduling into its own batch's slot (or into the
        sparse-absorption window behind the loaded batch) must dispatch
        it this batch, in time order — not defer it a full lap."""

        def workload(sim, mark):
            def fire():
                mark("head")
                # Same integer slot as the running batch (t=5.x), and
                # slots 6..8, which absorption may already have drained
                # into the loaded batch.
                sim.schedule(0.5, mark, "same-slot")
                sim.schedule(1.5, mark, "next-slot")
                sim.schedule(3.25, mark, "absorbed-slot")

            sim.schedule(5.0, fire)
            for i in range(12):
                sim.schedule(5.0 + i * 0.75, mark, ("bg", i))

        assert_engines_agree(workload)

    def test_sparse_absorption_window_keeps_order(self):
        """One entry per L0 slot over far more than the 16-slot
        absorption window — merged batches must still fire in time
        order, including entries cancelled mid-window."""
        sim = engine.Simulator()
        fired = []
        handles = [sim.schedule(1.0 + i, fired.append, i) for i in range(60)]
        for i in range(0, 60, 7):
            sim.cancel(handles[i])
        sim.run()
        assert fired == [i for i in range(60) if i % 7]

    def test_next_event_time_sees_all_levels(self):
        """Skip-ahead must find the earliest entry wherever it lives:
        batch, L0/L1/L2 wheel, or overflow heap."""
        for d in [0.5, 3.0, 300.0, 70_000.0, 2.0**24 + 1.0]:
            sim = engine.Simulator()
            fired = []
            sim.schedule(d, fired.append, "x")
            sim.run()
            assert fired == ["x"]
            assert sim.now == pytest.approx(d)

    def test_cancel_accepts_reference_handle(self):
        """Engine-agnostic callers cancel whatever schedule() returned;
        the reference engine returns None and cancel must say no."""
        ref = reference.Simulator()
        assert ref.cancel(ref.schedule(5.0, lambda: None)) is False
        fast = engine.Simulator()
        assert fast.cancel(None) is False
        handle = fast.schedule(5.0, lambda: None)
        assert fast.cancel(handle) is True
        assert fast.cancel(handle) is False  # already dead
