"""Tests for the live shared backup pool (§5.2)."""


from repro.core import BackupPool, SiftGroup
from repro.kv import KvClient, KvConfig, kv_app_factory
from repro.net import Fabric
from repro.sim import MS, SEC, Simulator


def make_fleet(n_groups=2, pool_size=1, fc=0, provisioning_delay_us=2 * SEC):
    sim = Simulator()
    fabric = Fabric(sim)
    kv_config = KvConfig(max_keys=128, wal_entries=64)
    groups = []
    for index in range(n_groups):
        group = SiftGroup(
            fabric,
            kv_config.sift_config(fm=1, fc=fc, wal_entries=64),
            name=f"g{index}",
            app_factory=kv_app_factory(kv_config),
        )
        group.start()
        groups.append(group)
    pool = BackupPool(
        fabric, groups, size=pool_size, provisioning_delay_us=provisioning_delay_us
    )
    pool.start()
    return sim, fabric, groups, pool


def run(sim, gen, until=120 * SEC):
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled
    if process.failed:
        raise process.exception
    return process.value


class TestPromotion:
    def test_backup_takes_over_dead_group(self):
        sim, fabric, groups, pool = make_fleet()
        client = KvClient(fabric.add_host("client", cores=2), fabric, groups[0])

        def scenario():
            yield from groups[0].wait_until_serving(timeout_us=3 * SEC)
            yield from client.put(b"k", b"v")
            groups[0].cpu_nodes[0].crash()
            value = yield from client.get(b"k")  # served by the promoted backup
            return value, pool.promotions

        value, promotions = run(sim, scenario())
        assert value == b"v"
        assert promotions == 1

    def test_groups_with_own_cpu_nodes_not_promoted(self):
        """The pool only steps in when a group has no CPU node left."""
        sim, fabric, groups, pool = make_fleet(fc=1)  # 2 CPU nodes per group
        client = KvClient(fabric.add_host("client", cores=2), fabric, groups[0])

        def scenario():
            yield from groups[0].wait_until_serving(timeout_us=3 * SEC)
            groups[0].crash_coordinator()
            value_source = yield from groups[0].wait_until_serving(timeout_us=3 * SEC)
            yield sim.timeout(200 * MS)
            return pool.promotions

        assert run(sim, scenario()) == 0

    def test_pool_replenishes_after_promotion(self):
        sim, fabric, groups, pool = make_fleet(pool_size=1, provisioning_delay_us=1 * SEC)

        def scenario():
            yield from groups[0].wait_until_serving(timeout_us=3 * SEC)
            groups[0].cpu_nodes[0].crash()
            deadline = sim.now + 30 * SEC
            while pool.promotions == 0 and sim.now < deadline:
                yield sim.timeout(20 * MS)
            assert pool.idle_backups == 0
            yield sim.timeout(1.5 * SEC)  # provisioning delay elapses
            return pool.idle_backups

        assert run(sim, scenario()) == 1

    def test_two_failures_one_backup_queue(self):
        """The second failed group waits for a provisioned VM (Fig 8's
        'additional recovery time')."""
        sim, fabric, groups, pool = make_fleet(
            n_groups=2, pool_size=1, provisioning_delay_us=2 * SEC
        )
        clients = [
            KvClient(fabric.add_host(f"c{i}", cores=2), fabric, groups[i])
            for i in range(2)
        ]

        def scenario():
            for index in range(2):
                yield from groups[index].wait_until_serving(timeout_us=3 * SEC)
                yield from clients[index].put(b"k", b"g%d" % index)
            groups[0].cpu_nodes[0].crash()
            groups[1].cpu_nodes[0].crash()
            a = yield from clients[0].get(b"k")
            b = yield from clients[1].get(b"k")
            return {a, b}, pool.promotions

        values, promotions = run(sim, scenario(), until=240 * SEC)
        assert values == {b"g0", b"g1"}
        assert promotions == 2

    def test_promoted_backup_serves_correct_group_data(self):
        sim, fabric, groups, pool = make_fleet(n_groups=3, pool_size=2)
        clients = [
            KvClient(fabric.add_host(f"c{i}", cores=2), fabric, groups[i])
            for i in range(3)
        ]

        def scenario():
            for index in range(3):
                yield from groups[index].wait_until_serving(timeout_us=3 * SEC)
                yield from clients[index].put(b"who", b"group-%d" % index)
            groups[1].cpu_nodes[0].crash()
            value = yield from clients[1].get(b"who")
            other = yield from clients[2].get(b"who")
            return value, other

        value, other = run(sim, scenario())
        assert value == b"group-1"
        assert other == b"group-2"
