"""Critical-path attribution: exactness, stage selection, real runs.

The synthetic tests pin the boundary semantics (milestone clamping,
serve-vs-replicated stage selection, nested-RPC filtering) on
hand-built span trees where every expected number is known.  The
integration tests then trace a real Sift run and check the two
load-bearing invariants end to end: segments sum to the root duration
bit for bit for *every* operation, and tracing changes none of the
measured numbers.  Finally the fig6path point function must be
byte-identical under ``run_points`` at ``jobs=1`` and ``jobs=2``.
"""

import pytest

from repro.bench.calibration import BenchScale
from repro.bench.parallel import Point, run_points
from repro.bench.points import critpath_point
from repro.bench.runner import run_latency
from repro.bench.systems import sift_spec
from repro.obs.critpath import (
    STAGES,
    aggregate,
    attribute,
    attribute_all,
    critical_path_section,
)
from repro.obs.trace import Tracer
from repro.sim.units import MS
from repro.workloads import WORKLOADS

SCALE = BenchScale(keys=2048, warmup_us=10 * MS, measure_us=20 * MS, clients=8)

TINY = BenchScale(
    keys=512,
    warmup_us=10 * MS,
    measure_us=30 * MS,
    clients=6,
    wal_entries=512,
    kv_wal_entries=512,
)


def _segments(breakdown):
    return {stage: us for stage, us in breakdown["segments"]}


def _stage_order(breakdown):
    return [stage for stage, _us in breakdown["segments"]]


def _replicated_put(tracer, start=0.0, end=100.0):
    """A put with the full milestone set at known offsets."""
    root = tracer.span("rpc.kv.put", start, src="client-0")
    root.event("rpc.recv", start + 10.0, method="kv.put")
    root.event("repmem.fanout", start + 30.0)
    root.event("nic.serialised", start + 40.0)
    root.event("repmem.quorum", start + 60.0)
    root.event("rpc.reply", start + 80.0, method="kv.put")
    root.annotate(ok=True)
    root.finish(end)
    return root


class TestAttribute:
    def test_full_milestone_breakdown(self):
        tracer = Tracer()
        root = _replicated_put(tracer)
        breakdown = attribute(tracer, root)
        assert breakdown["op"] == "rpc.kv.put"
        assert breakdown["duration_us"] == 100.0
        assert _stage_order(breakdown) == [
            "rpc_in", "wal_write", "fanout", "quorum", "apply", "ack",
        ]
        assert _segments(breakdown) == {
            "rpc_in": 10.0,
            "wal_write": 20.0,
            "fanout": 10.0,
            "quorum": 20.0,
            "apply": 20.0,
            "ack": 20.0,
        }

    def test_serve_path_without_replication_milestones(self):
        tracer = Tracer()
        root = tracer.span("rpc.kv.get", 0.0)
        root.event("rpc.recv", 10.0, method="kv.get")
        root.event("rpc.reply", 40.0, method="kv.get")
        root.finish(50.0)
        breakdown = attribute(tracer, root)
        assert _stage_order(breakdown) == ["rpc_in", "serve", "ack"]
        assert _segments(breakdown) == {"rpc_in": 10.0, "serve": 30.0, "ack": 10.0}

    def test_nested_rpc_milestones_are_filtered_by_method(self):
        # A baseline system replicates behind nested RPCs whose own
        # recv/reply instants must not move the root's boundaries.
        tracer = Tracer()
        root = tracer.span("rpc.kv.put", 0.0)
        root.event("rpc.recv", 10.0, method="kv.put")
        nested = root.child("rpc.repl.append", 15.0)
        nested.event("rpc.recv", 16.0, method="repl.append")
        nested.event("rpc.reply", 25.0, method="repl.append")
        nested.finish(26.0)
        root.event("rpc.reply", 40.0, method="kv.put")
        root.finish(50.0)
        breakdown = attribute(tracer, root)
        assert _segments(breakdown) == {"rpc_in": 10.0, "serve": 30.0, "ack": 10.0}

    def test_milestones_clamp_into_the_root_interval(self):
        tracer = Tracer()
        root = tracer.span("rpc.kv.get", 10.0)
        root.event("rpc.recv", 2.0, method="kv.get")  # before the root opens
        root.event("rpc.reply", 200.0, method="kv.get")  # after it closes
        root.finish(60.0)
        breakdown = attribute(tracer, root)
        assert _segments(breakdown) == {"rpc_in": 0.0, "serve": 50.0, "ack": 0.0}
        assert sum(us for _s, us in breakdown["segments"]) == 50.0

    def test_out_of_order_milestones_stay_monotonic(self):
        # A quorum stamped before the fanout (should not happen, but the
        # attribution must not produce negative segments if it does).
        tracer = Tracer()
        root = tracer.span("rpc.kv.put", 0.0)
        root.event("rpc.recv", 10.0, method="kv.put")
        root.event("repmem.fanout", 40.0)
        root.event("repmem.quorum", 30.0)
        root.finish(50.0)
        breakdown = attribute(tracer, root)
        assert all(us >= 0.0 for _stage, us in breakdown["segments"])
        total = 0.0
        for _stage, us in breakdown["segments"]:
            total += us
        assert total == breakdown["duration_us"]

    def test_exact_sum_with_awkward_floats(self):
        # Boundaries chosen so naive float telescoping leaves residue;
        # the fix-up must make the left-to-right sum exact anyway.
        tracer = Tracer()
        root = tracer.span("rpc.kv.put", 0.1)
        root.event("rpc.recv", 0.1 + 0.2, method="kv.put")
        root.event("repmem.fanout", 0.7)
        root.event("repmem.quorum", 1.1 + 1e-9)
        root.event("rpc.reply", 2.3, method="kv.put")
        root.finish(2.9000000000000004)
        breakdown = attribute(tracer, root)
        total = 0.0
        for _stage, us in breakdown["segments"]:
            total += us
        assert total == breakdown["duration_us"]  # bit-for-bit

    def test_unfinished_root_raises(self):
        tracer = Tracer()
        root = tracer.span("rpc.kv.put", 0.0)
        with pytest.raises(ValueError):
            attribute(tracer, root)

    def test_fanout_uses_last_serialisation_before_quorum(self):
        tracer = Tracer()
        root = tracer.span("rpc.kv.put", 0.0)
        root.event("rpc.recv", 10.0, method="kv.put")
        root.event("repmem.fanout", 20.0)
        root.event("nic.serialised", 25.0)
        root.event("nic.serialised", 35.0)
        root.event("repmem.quorum", 40.0)
        root.event("nic.serialised", 45.0)  # after quorum: not fanout work
        root.event("rpc.reply", 50.0, method="kv.put")
        root.finish(60.0)
        assert _segments(attribute(tracer, root))["fanout"] == 15.0  # 20 -> 35


class TestAttributeAll:
    def test_skips_unfinished_failed_and_foreign_roots(self):
        tracer = Tracer()
        ok = _replicated_put(tracer)
        tracer.span("rpc.kv.put", 200.0)  # still open: skipped
        failed = tracer.span("rpc.kv.get", 300.0)
        failed.annotate(ok=False)
        failed.finish(310.0)
        other = tracer.span("proc.step", 400.0)  # not an op root
        other.finish(410.0)
        breakdowns = attribute_all(tracer)
        assert [b["start_us"] for b in breakdowns] == [ok.start_us]

    def test_aggregate_shares_sum_to_one(self):
        tracer = Tracer()
        for i in range(5):
            _replicated_put(tracer, start=i * 1000.0, end=i * 1000.0 + 100.0)
        digest = aggregate(attribute_all(tracer))
        assert digest["count"] == 5
        assert digest["duration_us"]["mean"] == 100.0
        share_total = sum(s["share"] for s in digest["stages"].values())
        assert share_total == pytest.approx(1.0, abs=1e-12)
        assert set(digest["stages"]) <= set(STAGES)

    def test_critical_path_section_groups_and_samples(self):
        tracer = Tracer()
        for i in range(4):
            _replicated_put(tracer, start=i * 1000.0, end=i * 1000.0 + 100.0)
        section = critical_path_section(tracer, sample_ops=2)
        assert list(section) == ["rpc.kv.put"]
        entry = section["rpc.kv.put"]
        assert entry["aggregate"]["count"] == 4
        assert len(entry["sampled_ops"]) == 2


class TestRealRun:
    def _traced(self):
        tracer = Tracer()
        result = run_latency(
            sift_spec(cores=12, scale=SCALE),
            WORKLOADS["mixed"],
            1,
            scale=SCALE,
            seed=1,
            tracer=tracer,
        )
        return tracer, result

    def test_tracing_does_not_perturb_measured_latency(self):
        untraced = run_latency(
            sift_spec(cores=12, scale=SCALE), WORKLOADS["mixed"], 1,
            scale=SCALE, seed=1,
        )
        _tracer, traced = self._traced()
        assert traced == untraced

    def test_every_op_sums_exactly_and_puts_replicate(self):
        tracer, _result = self._traced()
        breakdowns = attribute_all(tracer)
        assert breakdowns, "traced run recorded no finished operations"
        for breakdown in breakdowns:
            total = 0.0
            for _stage, us in breakdown["segments"]:
                total += us
            assert total == breakdown["duration_us"]
            assert all(us >= 0.0 for _stage, us in breakdown["segments"])
        puts = [b for b in breakdowns if b["op"] == "rpc.kv.put"]
        assert puts, "mixed workload produced no puts"
        for put in puts:
            stages = set(_segments(put))
            assert {"wal_write", "quorum"} <= stages
        section = critical_path_section(tracer)
        assert {"rpc.kv.get", "rpc.kv.put"} <= set(section)


class TestJobsParity:
    def test_critpath_point_identical_at_jobs_1_and_2(self):
        points = [
            Point(
                key=f"{system}/low",
                fn=critpath_point,
                kwargs={
                    "system": system,
                    "workload": "mixed",
                    "clients": 1,
                    "cores": 12,
                    "scale": TINY,
                    "seed": 1,
                    "sample_ops": 4,
                    "export_spans": 200,
                },
            )
            for system in ("sift", "raft-r")
        ]
        serial = run_points(points, jobs=1)
        fanned = run_points(points, jobs=2)
        assert serial == fanned
