"""Direct tests for the RDMA listener's export/attach semantics."""

import pytest

from repro.net import Fabric
from repro.rdma import MemoryRegion, QueuePair, RdmaListener, RdmaProtectionError, Rnic
from repro.rdma.qp import QpState
from repro.sim import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    fabric = Fabric(sim)
    target = fabric.add_host("target", cores=1)
    listener = RdmaListener(target)
    region = MemoryRegion("r", 1024)
    listener.export(region, exclusive=True)
    shared = MemoryRegion("s", 1024)
    listener.export(shared, exclusive=False)
    return sim, fabric, target, listener, region, shared


def connect(sim, fabric, listener, name, regions):
    host = fabric.add_host(name, cores=1)
    qp = QueuePair(Rnic(host, fabric), listener, name=name)
    process = host.spawn(qp.connect(regions))
    process.add_callback(lambda _ev: None)  # observe failures ourselves
    sim.run_until_settled(process, deadline=1e6)
    if process.failed:
        raise process.exception
    return qp


class TestExports:
    def test_lookup_returns_exported_region(self, setup):
        _sim, _fabric, _target, listener, region, _shared = setup
        assert listener.lookup("r") is region

    def test_lookup_unknown_raises(self, setup):
        _sim, _fabric, _target, listener, *_ = setup
        with pytest.raises(RdmaProtectionError):
            listener.lookup("nope")

    def test_unexport_withdraws(self, setup):
        _sim, _fabric, _target, listener, *_ = setup
        listener.unexport("r")
        with pytest.raises(RdmaProtectionError):
            listener.lookup("r")

    def test_attach_unknown_region_rejected(self, setup):
        sim, fabric, _target, listener, *_ = setup
        with pytest.raises(RdmaProtectionError):
            connect(sim, fabric, listener, "a", ["ghost"])


class TestExclusivity:
    def test_holder_tracked(self, setup):
        sim, fabric, _target, listener, *_ = setup
        qp = connect(sim, fabric, listener, "a", ["r"])
        assert listener.holder_of("r") is qp

    def test_second_connection_revokes_first(self, setup):
        sim, fabric, _target, listener, *_ = setup
        first = connect(sim, fabric, listener, "a", ["r"])
        second = connect(sim, fabric, listener, "b", ["r"])
        assert first.state is QpState.REVOKED
        assert second.state is QpState.CONNECTED
        assert listener.holder_of("r") is second

    def test_reconnect_by_same_owner_not_self_revoking(self, setup):
        sim, fabric, _target, listener, *_ = setup
        qp = connect(sim, fabric, listener, "a", ["r"])
        listener.attach(qp, ["r"])  # idempotent re-attach
        assert qp.state is QpState.CONNECTED

    def test_shared_region_has_no_holder(self, setup):
        sim, fabric, _target, listener, *_ = setup
        connect(sim, fabric, listener, "a", ["s"])
        connect(sim, fabric, listener, "b", ["s"])
        assert listener.holder_of("s") is None

    def test_detach_clears_holdership(self, setup):
        sim, fabric, _target, listener, *_ = setup
        qp = connect(sim, fabric, listener, "a", ["r"])
        qp.close()
        assert listener.holder_of("r") is None

    def test_crash_clears_holderships(self, setup):
        sim, fabric, target, listener, *_ = setup
        connect(sim, fabric, listener, "a", ["r"])
        target.crash()
        assert listener.holder_of("r") is None

    def test_mixed_grant_revokes_only_exclusive(self, setup):
        sim, fabric, _target, listener, *_ = setup
        first = connect(sim, fabric, listener, "a", ["r", "s"])
        second = connect(sim, fabric, listener, "b", ["r", "s"])
        assert first.state is QpState.REVOKED  # lost the exclusive region
        assert second.state is QpState.CONNECTED
