"""Coordinator election tests (§3.2): safety and liveness scenarios."""


from repro.core import Role
from repro.core.membership import RESERVED_BYTES
from repro.net import PartitionController
from repro.sim import MS, SEC
from repro.testing import make_group

BASE = RESERVED_BYTES


def count_coordinators(group):
    return sum(1 for node in group.cpu_nodes if node.is_coordinator)


class TestBasicElection:
    def test_exactly_one_coordinator_elected(self):
        sim, _fabric, group = make_group()
        sim.run(until=500 * MS)
        assert count_coordinators(group) == 1

    def test_election_within_timeout_budget(self):
        sim, _fabric, group = make_group()
        deadline = 10 * group.config.election_timeout_us
        while group.serving_coordinator() is None and sim.now < deadline:
            sim.run(until=sim.now + 1 * MS)
        assert group.serving_coordinator() is not None

    def test_coordinator_has_highest_term(self):
        sim, _fabric, group = make_group()
        sim.run(until=500 * MS)
        coordinator = group.coordinator()
        assert coordinator.term >= 1

    def test_many_cpu_nodes_still_one_winner(self):
        sim, _fabric, group = make_group(fc=4)  # 5 candidates
        sim.run(until=1 * SEC)
        assert count_coordinators(group) == 1

    def test_stats_track_elections(self):
        sim, _fabric, group = make_group()
        sim.run(until=500 * MS)
        total_won = sum(node.stats["elections_won"] for node in group.cpu_nodes)
        assert total_won == 1


class TestFailover:
    def test_backup_takes_over(self):
        sim, _fabric, group = make_group()
        sim.run(until=300 * MS)
        first = group.coordinator()
        first.crash()
        sim.run(until=sim.now + 1 * SEC)
        second = group.coordinator()
        assert second is not None and second is not first
        assert second.term > first.term

    def test_detection_time_tracks_heartbeat_budget(self):
        """§6.5: ~3 missed heartbeats at 7ms reads => ~21ms detection."""
        sim, _fabric, group = make_group()
        sim.run(until=300 * MS)
        group.coordinator().crash()
        crash_time = sim.now
        while count_coordinators(group) == 0 and sim.now < crash_time + 1 * SEC:
            sim.run(until=sim.now + 1 * MS)
        detection_and_election = sim.now - crash_time
        budget = group.config.election_timeout_us
        assert detection_and_election >= budget * 0.5
        assert detection_and_election <= budget * 5

    def test_restarted_coordinator_becomes_follower(self):
        sim, _fabric, group = make_group()
        sim.run(until=300 * MS)
        first = group.coordinator()
        first.crash()
        sim.run(until=sim.now + 500 * MS)
        first.restart()
        sim.run(until=sim.now + 500 * MS)
        assert count_coordinators(group) == 1
        assert first.role is not Role.COORDINATOR

    def test_repeated_failovers(self):
        sim, _fabric, group = make_group(fc=2)
        sim.run(until=300 * MS)
        seen_terms = []
        for _round in range(3):
            coordinator = group.coordinator()
            assert coordinator is not None
            seen_terms.append(coordinator.term)
            coordinator.crash()
            sim.run(until=sim.now + 800 * MS)
            coordinator.restart()
        assert seen_terms == sorted(seen_terms)
        sim.run(until=sim.now + 500 * MS)
        assert count_coordinators(group) == 1


class TestSafetyUnderPartition:
    def test_partitioned_coordinator_steps_down(self):
        """A coordinator cut off from all memory nodes must not stay leader."""
        sim, fabric, group = make_group()
        sim.run(until=300 * MS)
        first = group.coordinator()
        controller = PartitionController(fabric)
        controller.isolate(first.host.name)
        sim.run(until=sim.now + 1 * SEC)
        # The survivor side elected a new coordinator...
        others = [n for n in group.cpu_nodes if n is not first]
        assert any(node.is_coordinator for node in others)
        # ...and the isolated one noticed it cannot renew its lease.
        assert not first.is_coordinator

    def test_no_two_coordinators_after_heal(self):
        sim, fabric, group = make_group()
        sim.run(until=300 * MS)
        first = group.coordinator()
        controller = PartitionController(fabric)
        controller.isolate(first.host.name)
        sim.run(until=sim.now + 500 * MS)
        controller.heal()
        sim.run(until=sim.now + 500 * MS)
        assert count_coordinators(group) <= 1

    def test_stale_coordinator_cannot_write_after_takeover(self):
        """At-most-one-connection fencing (§3.2): the deposed coordinator's
        replicated-memory writes fail once the successor connects."""
        sim, fabric, group = make_group()
        sim.run(until=300 * MS)
        first = group.coordinator()
        repmem = first.repmem

        def scenario():
            yield from repmem.write(BASE, b"before")
            controller = PartitionController(fabric)
            controller.isolate(first.host.name)
            # Wait for a successor, then heal so the stale node CAN reach
            # the memory nodes again — its connection must still be dead.
            yield sim.timeout(1 * SEC)
            controller.heal()
            yield sim.timeout(50 * MS)
            try:
                yield from repmem.write(BASE, b"stale!")
            except Exception as exc:
                return type(exc).__name__
            return "accepted"

        process = sim.spawn(scenario())
        sim.run_until_settled(process, deadline=10 * SEC)
        assert process.ok
        # Either the write was rejected, or this repmem was already torn
        # down (deposed) — it must never be silently "accepted".
        assert process.value in ("Deposed", "GroupUnavailable", "QuorumError")

    def test_minority_cpu_partition_makes_no_progress(self):
        """With a majority of memory nodes unreachable, nobody leads."""
        sim, fabric, group = make_group()
        controller = PartitionController(fabric)
        # Cut every CPU node off from two of the three memory nodes.
        cpu_names = [node.host.name for node in group.cpu_nodes]
        controller.split(cpu_names, [group.memory_nodes[1].name, group.memory_nodes[2].name])
        sim.run(until=1 * SEC)
        assert count_coordinators(group) == 0


class TestLeaseSemantics:
    def test_heartbeats_keep_coordinator_stable(self):
        sim, _fabric, group = make_group()
        sim.run(until=300 * MS)
        first = group.coordinator()
        first_term = first.term
        sim.run(until=sim.now + 2 * SEC)
        assert group.coordinator() is first
        assert first.term == first_term

    def test_memory_node_restart_does_not_depose(self):
        """Losing one admin word must not cost the lease (majority rule)."""
        sim, _fabric, group = make_group()
        sim.run(until=300 * MS)
        first = group.coordinator()
        group.crash_memory_node(2)
        sim.run(until=sim.now + 200 * MS)
        group.restart_memory_node(2)
        sim.run(until=sim.now + 500 * MS)
        assert group.coordinator() is first
