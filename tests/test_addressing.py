"""Unit tests for logical-address translation (plain and EC zones)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addressing import AddressMap
from repro.core.config import SiftConfig
from repro.core.errors import InvalidAccess


def make_map(erasure_coding=False, direct_bytes=0, block_bytes=1024, data_bytes=64 * 1024):
    config = SiftConfig(
        fm=1,
        fc=1,
        erasure_coding=erasure_coding,
        direct_bytes=direct_bytes,
        block_bytes=block_bytes,
        data_bytes=data_bytes,
        wal_entries=16,
        wal_payload_bytes=block_bytes + 64,
    )
    return AddressMap(config, data_offset=1000), config


class TestValidation:
    def test_range_inside_ok(self):
        amap, _config = make_map()
        amap.check_range(0, 64 * 1024)

    def test_range_outside_rejected(self):
        amap, _config = make_map()
        with pytest.raises(InvalidAccess):
            amap.check_range(64 * 1024 - 10, 11)
        with pytest.raises(InvalidAccess):
            amap.check_range(-1, 4)

    def test_straddling_zone_boundary_rejected(self):
        amap, _config = make_map(erasure_coding=True, direct_bytes=4096)
        with pytest.raises(InvalidAccess):
            amap.is_encoded(4090, 100)

    def test_direct_window_detection(self):
        amap, _config = make_map(erasure_coding=True, direct_bytes=4096)
        assert amap.in_direct_window(0, 4096)
        assert not amap.in_direct_window(4000, 200)
        assert not amap.is_encoded(100, 100)
        assert amap.is_encoded(8192, 100)

    def test_nothing_encoded_without_ec(self):
        amap, _config = make_map(erasure_coding=False)
        assert not amap.is_encoded(8192, 100)


class TestBlocks:
    def test_blocks_of_single(self):
        amap, _config = make_map()
        assert amap.blocks_of(0, 100) == [0]
        assert amap.blocks_of(1024, 1024) == [1]

    def test_blocks_of_spanning(self):
        amap, _config = make_map()
        assert amap.blocks_of(1000, 100) == [0, 1]
        assert amap.blocks_of(0, 3 * 1024) == [0, 1, 2]

    def test_blocks_of_zero_length(self):
        amap, _config = make_map()
        assert amap.blocks_of(2048, 0) == [2]

    def test_block_bounds(self):
        amap, _config = make_map()
        assert amap.block_bounds(3) == (3 * 1024, 4 * 1024)

    def test_block_bounds_clipped_at_end(self):
        amap, _config = make_map(data_bytes=2500)
        assert amap.block_bounds(2) == (2048, 2500)


class TestExtents:
    def test_raw_extent_is_identity_plus_offset(self):
        amap, _config = make_map()
        assert amap.raw_extent(0) == 1000
        assert amap.raw_extent(500) == 1500

    def test_chunk_extent_geometry(self):
        amap, config = make_map(erasure_coding=True, direct_bytes=4096)
        # First encoded block (block index 4) sits right after the direct
        # window on each node.
        assert amap.chunk_extent(4) == 1000 + 4096
        assert amap.chunk_extent(5) == 1000 + 4096 + config.chunk_bytes

    def test_chunk_extent_rejects_direct_blocks(self):
        amap, _config = make_map(erasure_coding=True, direct_bytes=4096)
        with pytest.raises(InvalidAccess):
            amap.chunk_extent(1)


class TestSplitByBlock:
    def test_within_one_block(self):
        amap, _config = make_map()
        assert amap.split_by_block(10, b"abc") == [(10, b"abc")]

    def test_across_blocks(self):
        amap, _config = make_map()
        pieces = amap.split_by_block(1020, b"x" * 10)
        assert pieces == [(1020, b"x" * 4), (1024, b"x" * 6)]

    def test_exact_block(self):
        amap, _config = make_map()
        pieces = amap.split_by_block(1024, b"y" * 1024)
        assert pieces == [(1024, b"y" * 1024)]

    def test_empty_write(self):
        amap, _config = make_map()
        assert amap.split_by_block(5, b"") == [(5, b"")]

    @given(addr=st.integers(0, 60 * 1024), size=st.integers(0, 4 * 1024))
    @settings(max_examples=100)
    def test_split_reassembles(self, addr, size):
        amap, _config = make_map()
        if addr + size > 64 * 1024:
            return
        data = bytes(i % 251 for i in range(size))
        pieces = amap.split_by_block(addr, data)
        # Pieces are contiguous, in order, and reassemble exactly.
        position = addr
        reassembled = b""
        for piece_addr, piece in pieces:
            assert piece_addr == position
            position += len(piece)
            reassembled += piece
            # No piece crosses a block boundary.
            if piece:
                first = amap.block_index(piece_addr)
                last = amap.block_index(piece_addr + len(piece) - 1)
                assert first == last
        assert reassembled == data


class TestNodeFootprint:
    def test_ec_reduces_node_bytes(self):
        _amap, plain = make_map(erasure_coding=False, data_bytes=64 * 1024)
        _amap2, coded = make_map(erasure_coding=True, direct_bytes=4096, data_bytes=64 * 1024)
        assert coded.node_data_bytes < plain.node_data_bytes
        # Encoded zone shrinks by ~(fm+1); direct window stays replicated.
        encoded_logical = coded.encoded_bytes
        encoded_stored = coded.encoded_blocks * coded.chunk_bytes
        assert encoded_stored <= encoded_logical // 2 + coded.block_bytes
