"""Tests for workload generation and the client pool."""

import random

import pytest

from repro.bench.metrics import Metrics
from repro.workloads import WORKLOADS, UniformSampler, ZipfSampler


class TestMixes:
    def test_paper_mixes(self):
        assert WORKLOADS["write-only"].write_fraction == 1.0
        assert WORKLOADS["mixed"].write_fraction == 0.5
        assert WORKLOADS["read-heavy"].write_fraction == 0.1
        assert WORKLOADS["read-only"].write_fraction == 0.0


class TestUniformSampler:
    def test_range(self):
        sampler = UniformSampler(100)
        rng = random.Random(0)
        samples = [sampler.sample(rng) for _ in range(1000)]
        assert all(0 <= s < 100 for s in samples)

    def test_roughly_uniform(self):
        sampler = UniformSampler(10)
        rng = random.Random(1)
        counts = [0] * 10
        for _ in range(10_000):
            counts[sampler.sample(rng)] += 1
        assert min(counts) > 700 and max(counts) < 1300

    def test_key_rendering(self):
        sampler = UniformSampler(10)
        key = sampler.key(7)
        assert len(key) <= 32
        assert key != sampler.key(8)

    def test_needs_at_least_one_key(self):
        with pytest.raises(ValueError):
            UniformSampler(0)


class TestZipfSampler:
    def test_range(self):
        sampler = ZipfSampler(1000, theta=0.99)
        rng = random.Random(0)
        assert all(0 <= sampler.sample(rng) < 1000 for _ in range(1000))

    def test_skew_favours_low_ranks(self):
        """With theta=0.99 the head of the distribution dominates (§6.2)."""
        sampler = ZipfSampler(100_000, theta=0.99)
        rng = random.Random(2)
        samples = [sampler.sample(rng) for _ in range(20_000)]
        top_100 = sum(1 for s in samples if s < 100)
        assert top_100 / len(samples) > 0.3  # heavy head
        assert sampler.hot_fraction(100) > 0.3
        assert sampler.hot_fraction(100_000) == pytest.approx(1.0)

    def test_zero_theta_is_uniform(self):
        sampler = ZipfSampler(1000, theta=0.0)
        assert sampler.hot_fraction(100) == pytest.approx(0.1, rel=0.01)

    def test_empirical_matches_cdf(self):
        sampler = ZipfSampler(1000, theta=0.99)
        rng = random.Random(3)
        samples = [sampler.sample(rng) for _ in range(50_000)]
        empirical = sum(1 for s in samples if s < 10) / len(samples)
        assert empirical == pytest.approx(sampler.hot_fraction(10), abs=0.02)

    def test_hot_fraction_monotone(self):
        sampler = ZipfSampler(1000)
        fractions = [sampler.hot_fraction(n) for n in (1, 10, 100, 1000)]
        assert fractions == sorted(fractions)
        assert sampler.hot_fraction(0) == 0.0


class TestMetrics:
    def test_throughput(self):
        metrics = Metrics()
        metrics.begin(0.0)
        for index in range(100):
            metrics.record("read", index * 10.0, index * 10.0 + 5.0)
        metrics.end(1_000_000.0)
        assert metrics.throughput() == pytest.approx(100.0)

    def test_latency_percentiles(self):
        metrics = Metrics()
        metrics.begin(0.0)
        for latency in range(1, 101):
            metrics.record("read", 0.0, float(latency))
        metrics.end(1.0)
        assert metrics.latency("read", 50) == pytest.approx(50.5)
        assert metrics.latency("read", 95) == pytest.approx(95.05)

    def test_records_outside_measurement_not_counted(self):
        metrics = Metrics()
        metrics.record("read", 0.0, 1.0)  # before begin
        metrics.begin(10.0)
        metrics.record("read", 10.0, 11.0)
        metrics.end(20.0)
        assert metrics.completed == 1

    def test_windows_track_timeline(self):
        metrics = Metrics(window_us=100.0)
        metrics.begin(0.0)
        metrics.record("read", 0.0, 50.0)
        metrics.record("read", 0.0, 150.0)
        metrics.record("read", 0.0, 160.0)
        metrics.end(300.0)
        timeline = metrics.timeline(0.0, 300.0)
        counts = [ops for _t, ops in timeline]
        assert counts[0] == pytest.approx(1 * 1e6 / 100.0)
        assert counts[1] == pytest.approx(2 * 1e6 / 100.0)

    def test_error_counting(self):
        metrics = Metrics()
        metrics.begin(0.0)
        metrics.record_error()
        metrics.end(1.0)
        assert metrics.errors == 1

    def test_reservoir_bounds_memory(self):
        metrics = Metrics(reservoir=100)
        metrics.begin(0.0)
        for index in range(10_000):
            metrics.record("read", 0.0, float(index))
        metrics.end(1.0)
        assert len(metrics.latencies["read"]) == 100
        assert metrics.completed == 10_000
