"""Unit and integration tests for repro.obs tracing and metrics."""

import pytest

from repro.obs import observe
from repro.obs import state as obs_state
from repro.obs.registry import MetricsRegistry, collecting, current_registry
from repro.obs.trace import Tracer, current_tracer, tracing
from repro.testing import make_kv_stack, run_scenario


class TestTracer:
    def test_span_tree(self):
        tracer = Tracer()
        root = tracer.span("op", 10.0, kind="put")
        child = root.child("rdma.write", 12.0)
        child.event("nic.serialised", 13.0)
        child.finish(20.0)
        root.finish(25.0)

        assert root.duration_us == 15.0
        assert child.finished
        assert tracer.roots() == [root]
        assert [s.name for s in tracer.subtree(root)] == [
            "op", "rdma.write", "nic.serialised",
        ]
        assert tracer.named("rdma.write") == [child]

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.span("s", 1.0)
        span.finish(2.0)
        span.finish(99.0)
        assert span.end_us == 2.0

    def test_instant_has_zero_duration(self):
        tracer = Tracer()
        event = tracer.instant("tick", 5.0, n=1)
        assert event.duration_us == 0.0
        assert event.attrs == {"n": 1}

    def test_to_dicts_and_render(self):
        tracer = Tracer()
        root = tracer.span("op", 0.0)
        root.event("done", 3.0)
        root.finish(3.0)
        dicts = tracer.to_dicts()
        assert dicts[0]["name"] == "op"
        assert dicts[1]["parent_id"] == dicts[0]["span_id"]
        text = tracer.render_tree()
        assert "op [0.00 +3.00us]" in text
        assert "\n  done" in text

    def test_tracing_contextmanager_installs_and_restores(self):
        assert current_tracer() is None
        with tracing() as tracer:
            assert current_tracer() is tracer
            assert obs_state.TRACER is tracer
        assert current_tracer() is None


class TestRegistry:
    def test_counter_get_or_create_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("rdma.verbs", type="read").inc()
        registry.counter("rdma.verbs", type="read").inc(2)
        registry.counter("rdma.verbs", type="write").inc()
        assert registry.value("rdma.verbs", type="read") == 3
        assert registry.value("rdma.verbs", type="write") == 1
        assert registry.sum_counters("rdma.verbs") == 4

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("x", a=1, b=2).inc()
        assert registry.value("x", b=2, a=1) == 1

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1)
        registry.gauge("g").set(7.5)
        assert registry.value("g") == 7.5

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", op="read")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 4.0
        assert summary["sum"] == 10.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] == 2.5

    def test_empty_histogram_summary(self):
        summary = MetricsRegistry().histogram("h").summary()
        assert summary["count"] == 0.0
        assert summary["p99"] == 0.0

    def test_snapshot_is_sorted_and_json_friendly(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        json.dumps(snap)  # must be serialisable

    def test_collecting_contextmanager(self):
        assert current_registry() is None
        with collecting() as registry:
            assert current_registry() is registry
        assert current_registry() is None


class TestInstrumentationIntegration:
    """A real KV run with obs on: spans form the paper's causal chain."""

    def test_kv_put_produces_causal_spans_and_counters(self):
        with observe() as (tracer, registry):
            sim, fabric, group, client = make_kv_stack(seed=3)

            def scenario():
                yield from client.put(b"k1", b"v1")
                return (yield from client.get(b"k1"))

            assert run_scenario(sim, scenario()) == b"v1"

        # Counters: verbs by type, wire traffic, core time all flowed.
        assert registry.sum_counters("rdma.verbs") > 0
        assert registry.sum_counters("rdma.bytes") > 0
        assert registry.sum_counters("net.messages") > 0
        assert registry.sum_counters("net.bytes") > 0
        assert registry.sum_counters("cpu.core_us") > 0
        assert registry.sum_counters("repmem.entries_logged") > 0
        assert registry.sum_counters("rpc.calls") > 0

        # Spans: an RDMA verb span carries the NIC-serialise and
        # remote-apply children, in virtual-time order.
        writes = [s for s in tracer.named("rdma.write") if s.finished]
        assert writes, "no finished rdma.write spans recorded"
        span = writes[0]
        children = {c.name for c in tracer.children_of(span)}
        assert "nic.serialised" in children
        assert "remote.applied" in children
        times = [c.start_us for c in tracer.children_of(span)]
        assert span.start_us <= min(times) and max(times) <= span.end_us
        assert span.duration_us > 0

        # RPC spans settled and annotated.
        rpcs = [s for s in tracer.spans if s.name.startswith("rpc.")]
        assert rpcs and all(s.finished for s in rpcs)
        assert any(s.attrs.get("ok") for s in rpcs)

    def test_chaos_runner_publishes_into_registry(self):
        from repro.chaos import ChaosRunner, FaultSchedule
        from repro.core import SiftGroup
        from repro.kv import KvConfig, kv_app_factory
        from repro.sim.units import MS

        def build_sift(fabric):
            kv_config = KvConfig(max_keys=256, wal_entries=128, watermark_interval=32)
            sift_config = kv_config.sift_config(
                fm=1, fc=1, wal_entries=128, memnode_poll_interval_us=30 * MS
            )
            group = SiftGroup(
                fabric, sift_config, name="s", app_factory=kv_app_factory(kv_config)
            )
            group.start()
            return group

        schedule = FaultSchedule().crash_leader(100 * MS)
        with collecting() as registry:
            result = ChaosRunner(build_sift, schedule, seed=1).run()
        assert registry.value("chaos.ops") == result.ops
        assert registry.value("chaos.injections") == len(result.trace)
        assert registry.value("chaos.max_simultaneous_leaders") == 1
        assert registry.sum_counters("raft.") == 0  # sift run, no raft noise
        assert registry.value("cluster.core_us_total") > 0

    def test_disabled_by_default(self):
        assert obs_state.TRACER is None
        assert obs_state.REGISTRY is None
        sim, fabric, group, client = make_kv_stack(seed=3)

        def scenario():
            yield from client.put(b"k", b"v")
            return (yield from client.get(b"k"))

        assert run_scenario(sim, scenario()) == b"v"
