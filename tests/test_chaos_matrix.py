"""The fault matrix: {Sift, Raft-R, EPaxos} x fault kinds x seeds.

Every cell builds a fresh cluster, runs a small recorded KV workload,
injects one canonical fault pattern through
:class:`~repro.chaos.runner.ChaosRunner`, and demands

* safety — per-term leader uniqueness throughout, and a linearizable
  history (no-phantom-values for EPaxos, whose asynchronous commit
  announcements legitimately weaken crash durability), and
* eventual liveness — after the schedule ends the cluster serves again
  and every key reads back.

A :class:`~repro.chaos.runner.ChaosError` prints the seed and injection
trace, so any red cell reproduces from this file alone.
"""

import pytest

from repro.chaos import ChaosRunner, FaultSchedule, LEADER, UnsupportedFault
from repro.sim.units import MS

SEEDS = (1, 2, 3)

# Message faults target the consensus traffic ("rdma" carries verbs and
# the baselines' replication messages); client RPCs are left alone so
# the recorded history reflects protocol behaviour, not lost requests.
CONSENSUS_STREAMS = ("rdma",)


def build_sift(fabric):
    from repro.core import SiftGroup
    from repro.kv import KvConfig, kv_app_factory

    kv_config = KvConfig(max_keys=256, wal_entries=128, watermark_interval=32)
    # Partitioned recovery (RAMCloud-style source->target pushes) is the
    # harder copy path, so the whole Sift column runs with it on: any
    # cell whose fault window overlaps a memory-node recovery exercises
    # the push channels, the trust gate, and the verify step.
    sift_config = kv_config.sift_config(
        fm=1,
        fc=1,
        wal_entries=128,
        memnode_poll_interval_us=30 * MS,
        recovery_partitions=4,
    )
    group = SiftGroup(
        fabric, sift_config, name="s", app_factory=kv_app_factory(kv_config)
    )
    group.start()
    return group


def build_raft(fabric):
    from repro.baselines.raft import RaftCluster, RaftConfig

    cluster = RaftCluster(fabric, RaftConfig(f=1), name="raft")
    cluster.start()
    return cluster


def build_epaxos(fabric):
    from repro.baselines.epaxos import EPaxosCluster, EPaxosConfig

    cluster = EPaxosCluster(fabric, EPaxosConfig(f=1), name="epaxos")
    cluster.start()
    return cluster


def build_sharded(fabric):
    from repro.kv import KvConfig
    from repro.shard import ShardedKvService

    kv_config = KvConfig(max_keys=256, wal_entries=128, watermark_interval=32)
    service = ShardedKvService(
        fabric,
        shards=2,
        backups=2,
        kv_config=kv_config,
        provisioning_delay_us=100 * MS,
    )
    service.start()
    return service


SYSTEMS = {
    "sift": build_sift,
    "raft": build_raft,
    "epaxos": build_epaxos,
}


def leader_crash():
    return FaultSchedule().crash_leader(200 * MS).restart_crashed(700 * MS)


def follower_crash():
    return FaultSchedule().crash_follower(200 * MS).restart_crashed(600 * MS)


def partition_symmetric():
    return FaultSchedule().partition(200 * MS, (LEADER,)).heal(700 * MS)


def partition_asymmetric():
    # One-way cut: the leader's outgoing traffic is dropped while it
    # still hears the world — the lease/fencing stress case (§3.2).
    return FaultSchedule().partition_oneway(200 * MS, LEADER).heal(700 * MS)


def message_duplication():
    return (
        FaultSchedule()
        .duplicate_messages(200 * MS, 0.2, CONSENSUS_STREAMS)
        .clear_message_faults(800 * MS)
    )


def source_crash_during_recovery():
    # A memory node fails and rejoins; while its image is being copied
    # back, another replica (a push source under partitioned recovery)
    # fails mid-fragment too.  The copy attempt must abort cleanly and a
    # later poll must still converge every node to INITIALISED.
    return (
        FaultSchedule()
        .crash_memory_node(200 * MS, 2)
        .restart_memory_node(320 * MS, 2)
        .crash_memory_node(350 * MS, 0)
        .restart_memory_node(600 * MS, 0)
    )


def failover_during_recovery():
    # The coordinator dies while a rejoining memory node is mid-copy:
    # the successor's exclusive re-attach fences any stale pushers, log
    # recovery re-derives membership, and the recovery restarts from
    # scratch under the new coordinator.
    return (
        FaultSchedule()
        .crash_memory_node(200 * MS, 2)
        .restart_memory_node(320 * MS, 2)
        .crash_leader(350 * MS)
        .restart_crashed(750 * MS)
    )


FAULTS = {
    "leader-crash": leader_crash,
    "follower-crash": follower_crash,
    "partition-sym": partition_symmetric,
    "partition-asym": partition_asymmetric,
    "duplication": message_duplication,
    "recovery-source-crash": source_crash_during_recovery,
    "recovery-failover": failover_during_recovery,
}


def _start_split(cluster):
    # Probe hook: kick off a live split of the first shard while the
    # recorded workload keeps running.  The manager rides the sim as a
    # background process; the schedule then kills the split's source
    # coordinator mid-flight.
    from repro.control import MigrationManager

    manager = MigrationManager.split(
        cluster.fabric,
        cluster,
        cluster.ring.shards[0],
        forward_window_us=50 * MS,
        scan_page_buckets=16,
    )
    cluster.fabric.sim.spawn(manager.run(), name="chaos-migration")


def migration_coordinator_crash():
    # A split starts mid-schedule and its source coordinator dies while
    # the copy/forward machinery runs: the manager must restart or
    # re-install hooks on the promoted successor, and the history must
    # stay linearizable with every acked write surviving.
    return (
        FaultSchedule()
        .probe(250 * MS, _start_split, "start-split")
        .crash_coordinator(253 * MS, shard=None, ring_version=0)
    )


@pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"s{s}")
def test_migration_chaos_cell(seed):
    runner = ChaosRunner(build_sharded, migration_coordinator_crash(), seed=seed)
    result = runner.run()  # raises ChaosError on any invariant violation
    assert result.acked_puts > 0
    assert result.ops > result.acked_puts


@pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"s{s}")
@pytest.mark.parametrize("fault", FAULTS)
@pytest.mark.parametrize("system", SYSTEMS)
def test_matrix_cell(system, fault, seed):
    runner = ChaosRunner(SYSTEMS[system], FAULTS[fault](), seed=seed)
    try:
        result = runner.run()  # raises ChaosError on any invariant violation
    except UnsupportedFault as exc:
        pytest.skip(str(exc))  # e.g. EPaxos has no memory nodes to break

    # The workload must have made real progress through the fault...
    assert result.acked_puts > 0
    assert result.ops > result.acked_puts  # reads happened too
    # ...and leadership stayed sane where the notion exists.
    if system != "epaxos":
        assert result.leader_terms, "no leader ever observed"
        terms = [term for term, _name in result.leader_terms]
        assert len(terms) == len(set(terms)), "a term with two leaders"


@pytest.mark.parametrize("system", SYSTEMS)
def test_matrix_cell_is_deterministic(system):
    """Same seed, same cell => identical injection trace and history."""

    def one_run():
        runner = ChaosRunner(SYSTEMS[system], leader_crash(), seed=2)
        result = runner.run()
        ops = tuple(
            (op.key, op.kind, op.value, op.invoked_at, op.responded_at)
            for op in runner.history.ops
        )
        return result.fingerprint(), ops

    first, second = one_run(), one_run()
    assert first == second


def test_explorer_covers_memory_node_faults_and_shrinks():
    """Random schedules over the Sift space include memory-node crashes,
    and a failing schedule shrinks to its minimal reproducer."""
    from repro.chaos import ChaosSpace, random_schedule, shrink

    space = ChaosSpace(nodes=2, memory_nodes=3, horizon_us=900 * MS)
    kinds = set()
    for seed in range(40):
        for action in random_schedule(seed, space):
            kinds.add(action.kind)
    assert "crash_memory_node" in kinds, "the space never broke a memory node"

    # Shrinking a noisy schedule against a memory-node predicate strips
    # every unrelated action, leaving the one-line reproducer a red
    # recovery cell would print.
    noisy = (
        FaultSchedule()
        .drop_messages(10 * MS, 0.1)
        .crash_memory_node(200 * MS, 2)
        .crash_leader(250 * MS)
        .restart_memory_node(320 * MS, 2)
        .clear_message_faults(400 * MS)
        .restart_crashed(700 * MS)
    )
    minimal = shrink(
        noisy, lambda s: any(a.kind == "crash_memory_node" for a in s)
    )
    assert [a.kind for a in minimal] == ["crash_memory_node"]


def test_failing_cell_reports_replay_seed():
    """A violated invariant names the seed and the injected trace."""
    from repro.chaos import ChaosError

    # Demand the impossible: both CPU nodes die and nothing restarts
    # them, so the post-schedule liveness check must fail.
    schedule = FaultSchedule().crash_node(100 * MS, 0).crash_node(100 * MS, 1)
    runner = ChaosRunner(
        build_sift, schedule, seed=5, settle_us=50 * MS, liveness_timeout_us=300 * MS
    )
    with pytest.raises(ChaosError) as excinfo:
        runner.run()
    assert "seed=5" in str(excinfo.value)
    assert "crash_node" in str(excinfo.value)
