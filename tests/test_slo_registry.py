"""SLO histograms and the percentile-label plumbing around them.

The fixed-bucket log-scale histogram must merge *exactly* across
``--jobs`` workers (integer bucket counts, declared-order float folds)
and summarise deterministically — these tests pin the bucket layout,
the interpolated percentiles' clamping, and the snapshot/dump/merge
round-trip the parallel executor relies on.
"""

import pytest

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    SloHistogram,
    percentile_labels,
)


class TestPercentileLabels:
    def test_formats_with_general_precision(self):
        assert percentile_labels((50.0, 95.0, 99.9)) == {
            "p50": 50.0,
            "p95": 95.0,
            "p99.9": 99.9,
        }

    def test_colliding_labels_first_wins(self):
        # 99.9 and 99.90 both format to "p99.9"; the map must not emit
        # the key twice nor let the later value clobber the first.
        labels = percentile_labels((99.9, 99.90, 50.0))
        assert list(labels) == ["p99.9", "p50"]
        assert labels["p99.9"] == 99.9

    def test_order_is_preserved(self):
        assert list(percentile_labels((99.0, 50.0, 95.0))) == ["p99", "p50", "p95"]


class TestHistogramDefaults:
    def test_summary_includes_p999(self):
        histogram = Histogram("lat")
        for v in range(1, 1001):
            histogram.observe(float(v))
        summary = histogram.summary()
        assert set(summary) >= {"count", "sum", "min", "max", "p50", "p95", "p99", "p99.9"}
        assert summary["p99.9"] == pytest.approx(999.001)
        assert summary["p50"] == 500.5


class TestSloHistogram:
    def test_bucket_layout_is_fixed_and_increasing(self):
        edges = SloHistogram.EDGES
        assert len(edges) == 64
        assert edges[0] == 1.0
        assert all(a < b for a, b in zip(edges, edges[1:]))
        slo = SloHistogram("lat")
        assert len(slo.counts) == len(edges) + 1

    def test_empty_summary(self):
        summary = SloHistogram("lat").summary()
        assert summary == {"count": 0.0, "sum": 0.0, "p50": 0.0, "p99": 0.0, "p99.9": 0.0}

    def test_exact_count_sum_min_max(self):
        slo = SloHistogram("lat")
        for v in (3.0, 0.25, 700.0, 3.0):
            slo.observe(v)
        assert slo.count == 4
        assert slo.total == 706.25
        assert slo.vmin == 0.25
        assert slo.vmax == 700.0

    def test_percentiles_clamp_to_observed_range(self):
        slo = SloHistogram("lat")
        for _ in range(100):
            slo.observe(42.0)
        # Interpolation inside the covering bucket must never escape
        # the observed min/max.
        assert slo.percentile(50.0) == 42.0
        assert slo.percentile(99.9) == 42.0

    def test_percentiles_are_monotone(self):
        slo = SloHistogram("lat")
        for v in range(1, 10_001):
            slo.observe(float(v))
        p50, p99, p999 = (slo.percentile(p) for p in (50.0, 99.0, 99.9))
        assert p50 <= p99 <= p999
        assert slo.vmin <= p50 and p999 <= slo.vmax

    def test_merge_equals_serial_observation(self):
        # Integer-valued samples make float addition exact, so the
        # merged histogram must match serial observation bit for bit.
        left, right, serial = SloHistogram("l"), SloHistogram("r"), SloHistogram("s")
        first = [float(v) for v in (1, 7, 90, 4096, 3)]
        second = [float(v) for v in (2, 2, 500_000, 16)]
        for v in first:
            left.observe(v)
            serial.observe(v)
        for v in second:
            right.observe(v)
            serial.observe(v)
        left.merge_state(right.state())
        assert left.counts == serial.counts
        assert left.total == serial.total
        assert left.vmin == serial.vmin
        assert left.vmax == serial.vmax
        assert left.summary() == serial.summary()

    def test_merge_into_empty_and_from_empty(self):
        empty, full = SloHistogram("e"), SloHistogram("f")
        full.observe(10.0)
        empty.merge_state(full.state())
        assert empty.summary() == full.summary()
        full.merge_state(SloHistogram("z").state())  # no-op
        assert full.count == 1

    def test_merge_rejects_mismatched_bucket_layout(self):
        slo = SloHistogram("lat")
        bad = SloHistogram("lat").state()
        bad["counts"] = bad["counts"][:-1]
        with pytest.raises(ValueError):
            slo.merge_state(bad)


class TestRegistrySlo:
    def test_get_or_create_identity_and_key_labels(self):
        registry = MetricsRegistry()
        a = registry.slo("kv.latency", shard=3)
        b = registry.slo("kv.latency", shard=3)
        assert a is b
        assert a.key == "kv.latency{shard=3}"
        assert registry.slo("kv.latency", shard=4) is not a

    def test_snapshot_section_only_when_slos_exist(self):
        registry = MetricsRegistry()
        assert "slo" not in registry.snapshot()
        registry.slo("kv.latency", shard=0).observe(5.0)
        snapshot = registry.snapshot()
        assert set(snapshot["slo"]) == {"kv.latency{shard=0}"}
        assert snapshot["slo"]["kv.latency{shard=0}"]["count"] == 1.0

    def test_dump_merge_round_trip(self):
        source = MetricsRegistry()
        source.counter("ops", kind="put").inc(3)
        source.histogram("lat", op="get").observe(12.5)
        for shard in (0, 1):
            for v in (5.0, 9.0, 80.0):
                source.slo("kv.latency", shard=shard).observe(v)
        target = MetricsRegistry()
        target.merge_dump(source.dump())
        assert target.snapshot() == source.snapshot()

    def test_worker_merge_matches_serial(self):
        # The run_points contract: per-worker private registries merged
        # in declared order must equal one registry observing serially.
        serial = MetricsRegistry()
        workers = [MetricsRegistry(), MetricsRegistry()]
        batches = [[1.0, 64.0, 17.0], [2.0, 2048.0]]
        for worker, batch in zip(workers, batches):
            for v in batch:
                worker.slo("kv.latency", shard=0).observe(v)
                serial.slo("kv.latency", shard=0).observe(v)
        merged = MetricsRegistry()
        for worker in workers:
            merged.merge_dump(worker.dump())
        assert merged.snapshot() == serial.snapshot()
