"""Unit tests for the simulated RDMA substrate."""

import pytest

from repro.net import Fabric
from repro.rdma import (
    MemoryRegion,
    QueuePair,
    RdmaConnectionRevoked,
    RdmaError,
    RdmaListener,
    RdmaMessenger,
    RdmaProtectionError,
    RdmaTimeout,
    Rnic,
)
from repro.rdma.qp import QpState
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def fabric(sim):
    return Fabric(sim)


class TestMemoryRegion:
    def test_read_write_roundtrip(self):
        region = MemoryRegion("r", 1024)
        region.write(100, b"hello")
        assert region.read(100, 5) == b"hello"

    def test_unwritten_bytes_are_zero(self):
        region = MemoryRegion("r", 1024)
        assert region.read(0, 16) == bytes(16)

    def test_cross_page_access(self):
        region = MemoryRegion("r", 4 * 4096)
        data = bytes(range(256)) * 40  # 10240 bytes, spans 3 pages
        region.write(4000, data)
        assert region.read(4000, len(data)) == data

    def test_sparse_backing_only_allocates_touched_pages(self):
        region = MemoryRegion("r", 1 << 30)  # 1 GiB logical
        region.write(12345678, b"x")
        assert len(region._pages) == 1

    def test_bounds_checked(self):
        region = MemoryRegion("r", 64)
        with pytest.raises(RdmaProtectionError):
            region.read(60, 8)
        with pytest.raises(RdmaProtectionError):
            region.write(-1, b"x")
        with pytest.raises(RdmaProtectionError):
            region.read(0, 65)

    def test_word_roundtrip(self):
        region = MemoryRegion("r", 64)
        region.write_word(8, 0xDEADBEEFCAFEBABE)
        assert region.read_word(8) == 0xDEADBEEFCAFEBABE

    def test_misaligned_atomic_rejected(self):
        region = MemoryRegion("r", 64)
        with pytest.raises(RdmaProtectionError):
            region.read_word(3)

    def test_cas_success_swaps_and_returns_old(self):
        region = MemoryRegion("r", 64)
        region.write_word(0, 5)
        assert region.compare_and_swap(0, 5, 9) == 5
        assert region.read_word(0) == 9

    def test_cas_failure_leaves_value_and_returns_current(self):
        region = MemoryRegion("r", 64)
        region.write_word(0, 5)
        assert region.compare_and_swap(0, 4, 9) == 5
        assert region.read_word(0) == 5

    def test_fill_zeroes(self):
        region = MemoryRegion("r", 64)
        region.write(0, b"junk")
        region.fill()
        assert region.read(0, 4) == bytes(4)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryRegion("r", 0)


def _make_pair(fabric, exclusive=False):
    """One requester and one target exporting a 4 KiB region."""
    target = fabric.add_host("target", cores=1)
    requester = fabric.add_host("requester", cores=2)
    listener = RdmaListener(target)
    region = MemoryRegion("data", 4096)
    listener.export(region, exclusive=exclusive)
    nic = Rnic(requester, fabric)
    qp = QueuePair(nic, listener)
    return requester, target, listener, region, nic, qp


class TestQueuePair:
    def test_connect_then_verbs(self, sim, fabric):
        requester, _target, _listener, region, _nic, qp = _make_pair(fabric)

        def proc():
            yield requester.spawn(qp.connect(["data"]))
            yield qp.write("data", 0, b"abc")
            data = yield qp.read("data", 0, 3)
            return data

        assert sim.run_process(proc()) == b"abc"
        assert region.read(0, 3) == b"abc"

    def test_verb_before_connect_fails(self, sim, fabric):
        *_rest, qp = _make_pair(fabric)
        event = qp.read("data", 0, 1)
        assert event.failed and isinstance(event.exception, RdmaError)

    def test_ungranted_region_rejected(self, sim, fabric):
        requester, *_rest, qp = _make_pair(fabric)

        def proc():
            yield requester.spawn(qp.connect(["data"]))
            try:
                yield qp.read("nope", 0, 1)
            except RdmaError:
                return "denied"

        assert sim.run_process(proc()) == "denied"

    def test_cas_verb(self, sim, fabric):
        requester, _target, _listener, region, _nic, qp = _make_pair(fabric)
        region.write_word(0, 7)

        def proc():
            yield requester.spawn(qp.connect(["data"]))
            old = yield qp.cas("data", 0, 7, 11)
            old2 = yield qp.cas("data", 0, 7, 13)  # stale expected: no swap
            return old, old2

        assert sim.run_process(proc()) == (7, 11)
        assert region.read_word(0) == 11

    def test_read_word_verb(self, sim, fabric):
        requester, _target, _listener, region, _nic, qp = _make_pair(fabric)
        region.write_word(8, 1234)

        def proc():
            yield requester.spawn(qp.connect(["data"]))
            value = yield qp.read_word("data", 8)
            return value

        assert sim.run_process(proc()) == 1234

    def test_verb_against_dead_target_times_out(self, sim, fabric):
        requester, target, _listener, _region, _nic, qp = _make_pair(fabric)

        def proc():
            yield requester.spawn(qp.connect(["data"]))
            target.crash()
            try:
                yield qp.read("data", 0, 1)
            except RdmaTimeout:
                return sim.now

        elapsed = sim.run_process(proc())
        assert elapsed >= 1000.0  # the default retry-exhaustion budget

    def test_stale_connection_after_target_restart(self, sim, fabric):
        requester, target, _listener, _region, _nic, qp = _make_pair(fabric)

        def proc():
            yield requester.spawn(qp.connect(["data"]))
            target.crash()
            target.restart()
            try:
                yield qp.read("data", 0, 1)
            except RdmaError:
                return "stale"

        assert sim.run_process(proc()) == "stale"

    def test_protection_fault_on_out_of_bounds(self, sim, fabric):
        requester, *_rest, qp = _make_pair(fabric)

        def proc():
            yield requester.spawn(qp.connect(["data"]))
            try:
                yield qp.read("data", 4090, 100)
            except RdmaProtectionError:
                return "fault"

        assert sim.run_process(proc()) == "fault"

    def test_close_detaches(self, sim, fabric):
        requester, *_rest, qp = _make_pair(fabric)

        def proc():
            yield requester.spawn(qp.connect(["data"]))
            qp.close()
            try:
                yield qp.read("data", 0, 1)
            except RdmaError:
                return qp.state

        assert sim.run_process(proc()) == QpState.CLOSED

    def test_rc_in_order_delivery(self, sim, fabric):
        """Writes posted back-to-back must apply in post order."""
        requester, _target, _listener, region, _nic, qp = _make_pair(fabric)

        def proc():
            yield requester.spawn(qp.connect(["data"]))
            last = None
            for value in range(50):
                last = qp.write("data", 0, value.to_bytes(4, "little"))
            yield last
            return region.read(0, 4)

        assert sim.run_process(proc()) == (49).to_bytes(4, "little")


class TestExclusiveRegions:
    def test_new_connection_revokes_previous(self, sim, fabric):
        target = fabric.add_host("t", cores=1)
        a = fabric.add_host("a", cores=1)
        b = fabric.add_host("b", cores=1)
        listener = RdmaListener(target)
        region = MemoryRegion("x", 1024)
        listener.export(region, exclusive=True)
        qp_a = QueuePair(Rnic(a, fabric), listener, name="qa")
        qp_b = QueuePair(Rnic(b, fabric), listener, name="qb")

        def proc():
            yield a.spawn(qp_a.connect(["x"]))
            yield qp_a.write("x", 0, b"from-a")
            yield b.spawn(qp_b.connect(["x"]))
            # The old holder's verbs now fail with a revocation error.
            try:
                yield qp_a.write("x", 0, b"stale")
            except RdmaConnectionRevoked:
                pass
            else:
                pytest.fail("stale write was accepted")
            yield qp_b.write("x", 0, b"from-b")
            return region.read(0, 6)

        assert sim.run_process(proc()) == b"from-b"
        assert qp_a.state is QpState.REVOKED

    def test_shared_region_allows_many_connections(self, sim, fabric):
        target = fabric.add_host("t", cores=1)
        hosts = [fabric.add_host(f"h{i}", cores=1) for i in range(3)]
        listener = RdmaListener(target)
        region = MemoryRegion("s", 1024)
        listener.export(region, exclusive=False)
        qps = [QueuePair(Rnic(h, fabric), listener) for h in hosts]

        def proc():
            for host, qp in zip(hosts, qps):
                yield host.spawn(qp.connect(["s"]))
            for index, qp in enumerate(qps):
                yield qp.write("s", index * 8, bytes([index]) * 8)
            return [region.read(i * 8, 8) for i in range(3)]

        results = sim.run_process(proc())
        assert results == [bytes([0]) * 8, bytes([1]) * 8, bytes([2]) * 8]

    def test_delayed_write_from_old_coordinator_dropped(self, sim, fabric):
        """§3.2: messages delayed across a takeover must not apply."""
        target = fabric.add_host("t", cores=1)
        a = fabric.add_host("a", cores=1)
        b = fabric.add_host("b", cores=1)
        listener = RdmaListener(target)
        region = MemoryRegion("x", 1024)
        listener.export(region, exclusive=True)
        qp_a = QueuePair(Rnic(a, fabric), listener)
        qp_b = QueuePair(Rnic(b, fabric), listener)
        outcome = {}

        def old_coordinator():
            yield a.spawn(qp_a.connect(["x"]))
            outcome["connected"] = sim.now
            # Issue a write that will be in flight while B takes over.
            event = qp_a.write("x", 0, b"stale-data")
            try:
                yield event
            except RdmaConnectionRevoked:
                outcome["old"] = "revoked"

        def new_coordinator():
            yield sim.timeout(1.0)  # let A connect and post first
            yield b.spawn(qp_b.connect(["x"]))
            yield qp_b.write("x", 0, b"fresh-data")

        sim.spawn(old_coordinator())
        sim.spawn(new_coordinator())
        sim.run()
        # Whatever the interleaving, the final bytes are never stale if B
        # wrote after its connection (revocation fences A).
        final = region.read(0, 10)
        assert final in (b"fresh-data", b"stale-data")
        if final == b"stale-data":
            # Only allowed if A's write landed before B connected.
            assert "old" not in outcome


class TestMessenger:
    def test_send_recv_roundtrip(self, sim, fabric):
        a = fabric.add_host("a", cores=1)
        b = fabric.add_host("b", cores=1)
        ma = RdmaMessenger(a, Rnic(a, fabric))
        mb = RdmaMessenger(b, Rnic(b, fabric))

        def receiver():
            message = yield mb.recv()
            return message

        process = b.spawn(receiver())
        ma.send(mb, {"hello": 1}, 64)
        sim.run()
        assert process.value == {"hello": 1}

    def test_fifo_order(self, sim, fabric):
        a = fabric.add_host("a", cores=1)
        b = fabric.add_host("b", cores=1)
        ma = RdmaMessenger(a, Rnic(a, fabric))
        mb = RdmaMessenger(b, Rnic(b, fabric))
        for index in range(20):
            ma.send(mb, index, 64)

        def receiver():
            got = []
            for _ in range(20):
                got.append((yield mb.recv()))
            return got

        process = b.spawn(receiver())
        sim.run()
        assert process.value == list(range(20))

    def test_messages_queue_until_recv(self, sim, fabric):
        a = fabric.add_host("a", cores=1)
        b = fabric.add_host("b", cores=1)
        ma = RdmaMessenger(a, Rnic(a, fabric))
        mb = RdmaMessenger(b, Rnic(b, fabric))
        ma.send(mb, "early", 64)
        sim.run()
        assert len(mb) == 1

    def test_crash_drops_queue(self, sim, fabric):
        a = fabric.add_host("a", cores=1)
        b = fabric.add_host("b", cores=1)
        ma = RdmaMessenger(a, Rnic(a, fabric))
        mb = RdmaMessenger(b, Rnic(b, fabric))
        ma.send(mb, "x", 64)
        sim.run()
        b.crash()
        assert len(mb) == 0

    def test_send_to_dead_host_is_silent(self, sim, fabric):
        a = fabric.add_host("a", cores=1)
        b = fabric.add_host("b", cores=1)
        ma = RdmaMessenger(a, Rnic(a, fabric))
        mb = RdmaMessenger(b, Rnic(b, fabric))
        b.crash()
        ma.send(mb, "x", 64)
        sim.run()  # no exception
        assert len(mb) == 0
