"""Observability must not perturb the simulation.

The literals below were captured from the seed code *before* the
instrumentation sites existed.  Two properties are pinned:

1. with obs disabled (the default), every figure driver reproduces the
   pre-instrumentation numbers byte-for-byte, and
2. enabling the tracer and the registry changes *nothing* — recording
   draws no randomness and schedules no events, so the simulated
   schedule is identical with observability on or off.

If an intentional simulator change moves these numbers, re-capture
them here and refresh benchmarks/baselines/ in the same commit.
"""

import pytest

from repro.bench.calibration import BenchScale
from repro.bench.runner import run_latency, run_throughput, run_timeline
from repro.bench.systems import raft_spec, sift_spec
from repro.obs import observe
from repro.sim.units import MS, SEC
from repro.workloads import WORKLOADS

SCALE = BenchScale(keys=2048, warmup_us=10 * MS, measure_us=20 * MS, clients=8)

# Captured at commit f27e254 (pre-instrumentation), seed=1.
GOLDEN_SIFT_TP = (147200.0, 2944, 0)
GOLDEN_RAFT_TP = (152700.0, 3054, 0)
GOLDEN_SIFT_LAT = (
    53.1433685386728,
    62.47442726300214,
    58.7027923188507,
    60.69487473702757,
    17700.0,
)
GOLDEN_TL_SERIES = [
    (-0.008999999999999994, 73760.0),
    (0.09100000000000001, 73840.0),
    (0.191, 73980.0),
    (0.29100000000000004, 73980.0),
    (0.391, 69120.0),
    (0.491, 73980.0),
    (0.591, 73920.0),
    (0.6910000000000001, 73910.0),
    (0.791, 6660.0),
]
GOLDEN_TL_EVENTS = [(0.25, "crash mem2"), (0.4, "restart mem2")]


def _throughput(spec_factory):
    result = run_throughput(
        spec_factory(), WORKLOADS["read-heavy"], scale=SCALE, seed=1
    )
    return (result.ops_per_sec, result.completed, result.errors)


def _latency():
    r = run_latency(
        sift_spec(cores=12, scale=SCALE), WORKLOADS["mixed"], 1, scale=SCALE, seed=1
    )
    return (r.read_p50, r.read_p95, r.write_p50, r.write_p95, r.ops_per_sec)


def _timeline():
    def crash(cluster):
        cluster.crash_memory_node(2)

    def restart(cluster):
        cluster.restart_memory_node(2)

    return run_timeline(
        sift_spec(cores=12, scale=SCALE),
        WORKLOADS["read-heavy"],
        4,
        0.8 * SEC,
        events=[(0.25 * SEC, "crash mem2", crash), (0.4 * SEC, "restart mem2", restart)],
        scale=SCALE,
        seed=1,
    )


class TestDisabledMatchesSeed:
    """Default mode: numbers are bit-identical to the pre-obs capture."""

    def test_sift_throughput(self):
        assert _throughput(lambda: sift_spec(cores=12, scale=SCALE)) == GOLDEN_SIFT_TP

    def test_raft_throughput(self):
        assert _throughput(lambda: raft_spec(cores=12, scale=SCALE)) == GOLDEN_RAFT_TP

    def test_sift_latency(self):
        assert _latency() == GOLDEN_SIFT_LAT

    def test_timeline(self):
        result = _timeline()
        assert result.series == GOLDEN_TL_SERIES
        assert result.events == GOLDEN_TL_EVENTS


class TestEnabledIsFree:
    """Tracer + registry on: same numbers, observations recorded."""

    def test_throughput_unchanged_with_obs_on(self):
        with observe() as (tracer, registry):
            got = _throughput(lambda: sift_spec(cores=12, scale=SCALE))
        assert got == GOLDEN_SIFT_TP
        assert len(tracer) > 0
        assert registry.sum_counters("rdma.verbs") > 0
        assert registry.value("bench.throughput_ops") == GOLDEN_SIFT_TP[0]

    def test_timeline_unchanged_with_obs_on(self):
        with observe() as (tracer, registry):
            result = _timeline()
        assert result.series == GOLDEN_TL_SERIES
        assert result.events == GOLDEN_TL_EVENTS
        assert registry.sum_counters("repmem.nodes_marked_dead") == 1
        assert registry.sum_counters("repmem.nodes_recovered") == 1
        # The crash landed 0.25 s into the measurement; the coordinator
        # marks the node dead within a few detection rounds of that.
        # (The instant's timestamp is absolute sim time: rebase.)
        crash_marks = tracer.named("repmem.node_dead")
        assert len(crash_marks) == 1
        assert (crash_marks[0].start_us - result.base_us) == pytest.approx(
            0.25 * SEC, abs=50 * MS
        )
