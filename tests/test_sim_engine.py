"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    CpuPool,
    ProcessKilled,
    RngStreams,
    SimulationError,
    Simulator,
    all_of,
    any_of,
    quorum,
)
from repro.sim.engine import QuorumError


@pytest.fixture
def sim():
    return Simulator()


class TestClockAndScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_in_time_order(self, sim):
        order = []
        sim.schedule(5.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(9.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_run_in_schedule_order(self, sim):
        order = []
        for tag in range(10):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list(range(10))

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_stops_the_clock(self, sim):
        sim.schedule(100.0, lambda: None)
        sim.run(until=40.0)
        assert sim.now == 40.0

    def test_run_until_past_queue_advances_clock(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run(until=50.0)
        assert sim.now == 50.0

    def test_run_drains_queue(self, sim):
        hits = []
        sim.schedule(3.0, hits.append, 1)
        assert sim.run() == 3.0
        assert hits == [1]

    def test_resume_after_run_until(self, sim):
        hits = []
        sim.schedule(100.0, hits.append, 1)
        sim.run(until=50.0)
        assert hits == []
        sim.run()
        assert hits == [1]
        assert sim.now == 100.0


class TestEvents:
    def test_trigger_sets_value(self, sim):
        event = sim.event()
        event.trigger(42)
        assert event.ok and event.value == 42

    def test_fail_sets_exception(self, sim):
        event = sim.event()
        error = RuntimeError("boom")
        event.fail(error)
        assert event.failed and event.exception is error

    def test_double_trigger_raises(self, sim):
        event = sim.event()
        event.trigger(1)
        with pytest.raises(SimulationError):
            event.trigger(2)

    def test_try_trigger_after_settle_is_noop(self, sim):
        event = sim.event()
        assert event.try_trigger(1)
        assert not event.try_trigger(2)
        assert event.value == 1

    def test_try_fail_after_settle_is_noop(self, sim):
        event = sim.event()
        event.trigger(1)
        assert not event.try_fail(RuntimeError())
        assert event.ok

    def test_fail_requires_exception_instance(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_callback_after_settle_fires_immediately(self, sim):
        event = sim.event()
        event.trigger("x")
        seen = []
        event.add_callback(lambda ev: seen.append(ev.value))
        assert seen == ["x"]

    def test_timeout_value(self, sim):
        timeout = sim.timeout(7.5, value="done")
        sim.run()
        assert timeout.ok and timeout.value == "done" and sim.now == 7.5

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-0.1)


class TestProcesses:
    def test_process_returns_value(self, sim):
        def proc():
            yield sim.timeout(3.0)
            return "result"

        assert sim.run_process(proc()) == "result"
        assert sim.now == 3.0

    def test_yield_receives_event_value(self, sim):
        def proc():
            value = yield sim.timeout(1.0, value=99)
            return value

        assert sim.run_process(proc()) == 99

    def test_failed_event_raises_inside_process(self, sim):
        event = sim.event()
        sim.schedule(2.0, lambda: event.fail(ValueError("bad")))

        def proc():
            try:
                yield event
            except ValueError as exc:
                return f"caught {exc}"

        assert sim.run_process(proc()) == "caught bad"

    def test_unhandled_process_exception_aborts_run(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise RuntimeError("unobserved")

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_observed_process_exception_propagates_to_joiner(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise ValueError("child died")

        def parent():
            try:
                yield sim.spawn(child())
            except ValueError:
                return "observed"

        assert sim.run_process(parent()) == "observed"

    def test_join_returns_child_value(self, sim):
        def child():
            yield sim.timeout(1.0)
            return 7

        def parent():
            value = yield sim.spawn(child())
            return value * 2

        assert sim.run_process(parent()) == 14

    def test_yielding_non_event_aborts(self, sim):
        def proc():
            yield 42

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_kill_stops_process(self, sim):
        hits = []

        def proc():
            while True:
                yield sim.timeout(1.0)
                hits.append(sim.now)

        process = sim.spawn(proc())
        sim.run(until=3.5)
        process.kill()
        sim.run()
        assert not process.alive
        assert hits == [1.0, 2.0, 3.0]

    def test_killed_process_fails_joiners_with_process_killed(self, sim):
        def child():
            yield sim.timeout(100.0)

        child_proc = sim.spawn(child())

        def parent():
            try:
                yield child_proc
            except ProcessKilled:
                return "killed"

        parent_proc = sim.spawn(parent())
        sim.schedule(1.0, child_proc.kill)
        sim.run(until=2.0)
        assert parent_proc.ok and parent_proc.value == "killed"

    def test_kill_finished_process_is_noop(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return 1

        process = sim.spawn(proc())
        sim.run()
        process.kill()
        assert process.ok and process.value == 1

    def test_process_cleanup_on_kill_runs_finally(self, sim):
        cleaned = []

        def proc():
            try:
                yield sim.timeout(100.0)
            finally:
                cleaned.append(True)

        process = sim.spawn(proc())
        sim.run(until=1.0)
        process.kill()
        assert cleaned == [True]

    def test_deadlocked_run_process_raises(self, sim):
        def proc():
            yield sim.event()  # never triggered

        with pytest.raises(SimulationError):
            sim.run_process(proc())


class TestCombinators:
    def test_all_of_collects_values(self, sim):
        def proc():
            events = [sim.timeout(i, value=i) for i in (3.0, 1.0, 2.0)]
            values = yield all_of(sim, events)
            return values

        assert sim.run_process(proc()) == [3.0, 1.0, 2.0]

    def test_all_of_empty_triggers_immediately(self, sim):
        combined = all_of(sim, [])
        assert combined.ok and combined.value == []

    def test_all_of_fails_on_first_failure(self, sim):
        good = sim.timeout(5.0)
        bad = sim.event()
        sim.schedule(1.0, lambda: bad.fail(RuntimeError("x")))

        def proc():
            try:
                yield all_of(sim, [good, bad])
            except RuntimeError:
                return sim.now

        assert sim.run_process(proc()) == 1.0

    def test_any_of_returns_first(self, sim):
        def proc():
            events = [sim.timeout(5.0, value="slow"), sim.timeout(1.0, value="fast")]
            index, value = yield any_of(sim, events)
            return index, value

        assert sim.run_process(proc()) == (1, "fast")

    def test_any_of_requires_events(self, sim):
        with pytest.raises(SimulationError):
            any_of(sim, [])

    def test_quorum_triggers_at_k(self, sim):
        def proc():
            events = [sim.timeout(float(i + 1), value=i) for i in range(5)]
            winners = yield quorum(sim, events, 3)
            return sim.now, [i for i, _v in winners]

        now, indices = sim.run_process(proc())
        assert now == 3.0
        assert indices == [0, 1, 2]

    def test_quorum_ignores_late_failures(self, sim):
        events = [sim.event() for _ in range(3)]
        q = quorum(sim, events, 2)
        events[0].trigger("a")
        events[1].trigger("b")
        assert q.ok
        events[2].fail(RuntimeError())  # must not disturb the settled quorum
        assert q.ok

    def test_quorum_fails_when_impossible(self, sim):
        events = [sim.event() for _ in range(3)]
        q = quorum(sim, events, 2)
        events[0].fail(RuntimeError("1"))
        assert not q.settled
        events[1].fail(RuntimeError("2"))
        assert q.failed and isinstance(q.exception, QuorumError)

    def test_quorum_of_zero_triggers_immediately(self, sim):
        q = quorum(sim, [sim.event()], 0)
        assert q.ok and q.value == []

    def test_quorum_larger_than_events_rejected(self, sim):
        with pytest.raises(SimulationError):
            quorum(sim, [sim.event()], 2)


class TestCpuPool:
    def test_serial_execution_on_one_core(self, sim):
        pool = CpuPool(sim, 1)
        done = []
        for _ in range(3):
            pool.execute(10.0).add_callback(lambda ev: done.append(sim.now))
        sim.run()
        assert done == [10.0, 20.0, 30.0]

    def test_parallel_execution_on_many_cores(self, sim):
        pool = CpuPool(sim, 3)
        done = []
        for _ in range(3):
            pool.execute(10.0).add_callback(lambda ev: done.append(sim.now))
        sim.run()
        assert done == [10.0, 10.0, 10.0]

    def test_queueing_beyond_core_count(self, sim):
        pool = CpuPool(sim, 2)
        done = []
        for _ in range(4):
            pool.execute(10.0).add_callback(lambda ev: done.append(sim.now))
        sim.run()
        assert done == [10.0, 10.0, 20.0, 20.0]

    def test_zero_cost_completes_immediately(self, sim):
        pool = CpuPool(sim, 1)
        event = pool.execute(0.0)
        assert event.ok

    def test_fifo_ordering(self, sim):
        pool = CpuPool(sim, 1)
        order = []
        for tag in range(5):
            pool.execute(1.0).add_callback(lambda ev, t=tag: order.append(t))
        sim.run()
        assert order == list(range(5))

    def test_utilisation(self, sim):
        pool = CpuPool(sim, 2)
        pool.execute(10.0)
        sim.run()
        assert pool.utilisation(10.0) == pytest.approx(0.5)

    def test_at_least_one_core_required(self, sim):
        with pytest.raises(SimulationError):
            CpuPool(sim, 0)

    def test_drain_discards_queued_work(self, sim):
        pool = CpuPool(sim, 1)
        done = []
        pool.execute(10.0).add_callback(lambda ev: done.append("a"))
        pool.execute(10.0).add_callback(lambda ev: done.append("b"))
        pool.drain()
        sim.run()
        assert done == ["a"]  # in-service finishes; queued is dropped


class TestRngStreams:
    def test_streams_are_deterministic(self):
        a = RngStreams(seed=5).stream("x")
        b = RngStreams(seed=5).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_differ_by_name(self):
        streams = RngStreams(seed=5)
        assert streams.stream("x").random() != streams.stream("y").random()

    def test_streams_differ_by_seed(self):
        assert RngStreams(seed=1).stream("x").random() != RngStreams(seed=2).stream("x").random()

    def test_stream_is_memoised(self):
        streams = RngStreams(seed=0)
        assert streams.stream("a") is streams.stream("a")


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build():
            sim = Simulator()
            rng = RngStreams(seed=3).stream("jitter")
            trace = []

            def proc(tag):
                for _ in range(20):
                    yield sim.timeout(rng.uniform(0.1, 2.0))
                    trace.append((tag, sim.now))

            for tag in range(4):
                sim.spawn(proc(tag))
            sim.run()
            return trace

        assert build() == build()
