"""Tests for the §6.5 popularity-ordered recovery extension."""

import pytest

from repro.core import SiftConfig, SiftGroup
from repro.core.membership import RESERVED_BYTES
from repro.core.recovery import MemoryNodeRecoveryManager
from repro.core.replicated_memory import NodeState
from repro.net import Fabric
from repro.sim import MS, SEC, Simulator

BASE = RESERVED_BYTES


def make_group(order="popularity", **overrides):
    sim = Simulator()
    fabric = Fabric(sim)
    defaults = dict(
        fm=1,
        fc=1,
        data_bytes=64 * 1024,
        wal_entries=64,
        recovery_chunk_bytes=8 * 1024,
        recovery_order=order,
        memnode_poll_interval_us=20 * MS,
    )
    defaults.update(overrides)
    group = SiftGroup(fabric, SiftConfig(**defaults), name="pop")
    group.start()
    return sim, fabric, group


def run(sim, gen, until=60 * SEC):
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled
    if process.failed:
        raise process.exception
    return process.value


class TestConfig:
    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            SiftConfig(recovery_order="random").validate()

    def test_both_orders_accepted(self):
        SiftConfig(recovery_order="sequential").validate()
        SiftConfig(recovery_order="popularity").validate()


class TestPopularityTracking:
    def test_reads_accumulate_popularity(self):
        sim, _f, group = make_group()

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem
            yield from rm.write(BASE, b"hot")
            for _ in range(10):
                yield from rm.read(BASE, 3)
            yield from rm.read(32 * 1024, 3)
            return dict(rm.read_popularity)

        popularity = run(sim, scenario())
        hot_chunk = BASE // (8 * 1024)
        cold_chunk = 32 * 1024 // (8 * 1024)
        assert popularity[hot_chunk] > popularity[cold_chunk]


class TestCopyPlan:
    def _manager_with_popularity(self, order):
        sim, _f, group = make_group(order=order)
        sim.run(until=300 * MS)
        coordinator = group.serving_coordinator()
        rm = coordinator.repmem
        # Chunk 2 hottest, chunk 5 warm, everything else cold.
        rm.read_popularity[2] = 100
        rm.read_popularity[5] = 10
        return MemoryNodeRecoveryManager(rm), rm.config

    def test_sequential_plan_is_address_ordered(self):
        manager, config = self._manager_with_popularity("sequential")
        plan = manager._copy_plan()
        addresses = [addr for addr, _length in plan]
        assert addresses == sorted(addresses)

    def test_popularity_plan_puts_hot_chunks_last(self):
        manager, config = self._manager_with_popularity("popularity")
        plan = manager._copy_plan()
        step = config.recovery_chunk_bytes
        chunk_order = [addr // step for addr, _length in plan]
        assert chunk_order[-1] == 2  # hottest copied last
        assert chunk_order[-2] == 5
        # Every chunk is still covered exactly once.
        assert sorted(chunk_order) == list(range(len(plan)))

    def test_plan_covers_whole_space(self):
        manager, config = self._manager_with_popularity("popularity")
        plan = manager._copy_plan()
        assert sum(length for _addr, length in plan) == config.data_bytes


class TestEndToEnd:
    def test_popularity_ordered_recovery_completes_and_is_correct(self):
        sim, _f, group = make_group(order="popularity")

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            rm = coord.repmem
            for index in range(8):
                yield from rm.write(BASE + index * 4096, b"block-%d" % index)
            for _ in range(20):  # make block 0 hot
                yield from rm.read(BASE, 7)
            group.crash_memory_node(2)
            yield from rm.write(BASE, b"block-X")
            yield sim.timeout(5 * MS)
            group.restart_memory_node(2)
            deadline = sim.now + 30 * SEC
            while rm.states[2] != NodeState.LIVE and sim.now < deadline:
                yield sim.timeout(10 * MS)
            assert rm.states[2] == NodeState.LIVE
            offset = rm.amap.raw_extent(BASE)
            return group.memory_nodes[2].repmem_region.read(offset, 7)

        assert run(sim, scenario()) == b"block-X"
