"""Tests for the elastic control plane (repro.control, repro.api).

Covers the ISSUE's required cases: ring-version monotonicity as a
property suite over random split/merge sequences, linearizability under
live key migration (concurrent recorded clients across a split and a
merge), coordinator-failover and source-crash cells mid-migration, the
redesigned ``Cluster.topology()/scale()/migrate()`` surface with its
warn-once deprecation shims, the unified :class:`StatsSnapshot`
protocol, and ring-version-aware chaos targeting.
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Cluster, ReproError, Topology
from repro.bench.lincheck import History, Op, check_history
from repro.control import MigrationManager, Reconciler, ReconcilerConfig
from repro.kv.client import KvRequestFailed
from repro.kv.config import KvConfig
from repro.net import Fabric
from repro.obs.stats import StatsSnapshot, snapshot_of
from repro.shard import HashRing, ShardRouter, ShardedKvService
from repro.shard.hashing import key_point, ranges_contain
from repro.sim import MS, SEC, Simulator
from repro.sim.rng import RngStreams

SMALL_KV = KvConfig(max_keys=512, wal_entries=256)


def make_service(shards=2, backups=1, provisioning_delay_us=2 * SEC, seed=7, **kw):
    sim = Simulator()
    fabric = Fabric(sim, rng=RngStreams(seed=seed))
    service = ShardedKvService(
        fabric,
        shards=shards,
        backups=backups,
        provisioning_delay_us=provisioning_delay_us,
        kv_config=SMALL_KV,
        **kw,
    )
    service.start()
    return sim, fabric, service


def run(sim, gen, until=300 * SEC):
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled
    if process.failed:
        raise process.exception
    return process.value


def serve(sim, service):
    run(sim, service.wait_until_serving(timeout_us=30 * SEC))


# ---------------------------------------------------------------------------
# Ring-version properties
# ---------------------------------------------------------------------------


class TestRingVersioning:
    """Monotonicity and conservation over random mutation sequences."""

    @given(st.lists(st.booleans(), min_size=1, max_size=8), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_mutation_sequence_invariants(self, plan, key_seed):
        ring = HashRing(["s0", "s1"])
        keys = [b"pk%d-%d" % (key_seed, i) for i in range(80)]
        points = sorted(ring._points)
        version = ring.version
        counter = 2
        for do_split in plan:
            if do_split or len(ring.shards) < 2:
                before = {k: ring.shard_for(k) for k in keys}
                victim = ring.shards[len(ring.shards) // 2]
                new = f"s{counter}"
                counter += 1
                ring, moved = ring.split(victim, new)
                # Only keys inside the returned arcs changed owner, and
                # every one of them now belongs to the new shard.
                for k in keys:
                    if ring.shard_for(k) != before[k]:
                        assert before[k] == victim
                        assert ring.shard_for(k) == new
                        assert ranges_contain(moved, key_point(k))
                    else:
                        assert not ranges_contain(moved, key_point(k))
            else:
                victim = ring.shards[0]
                into = ring.shards[-1]
                before = {k: ring.shard_for(k) for k in keys}
                ring, moved = ring.merge(victim, into)
                assert victim not in ring.shards
                for k in keys:
                    expect = into if before[k] == victim else before[k]
                    assert ring.shard_for(k) == expect
            # Version strictly advances by one per mutation, and the
            # point multiset is conserved (vnodes move, never vanish).
            assert ring.version == version + 1
            version = ring.version
            assert sorted(ring._points) == points
            # Every key has exactly one owner on the current ring.
            for k in keys:
                assert ring.shard_for(k) in ring.shards

    def test_install_ring_must_advance_version(self):
        sim, fabric, service = make_service()
        serve(sim, service)
        with pytest.raises(ValueError):
            service.install_ring(service.ring)  # same version: rejected

    def test_ring_history_records_every_version(self):
        sim, fabric, service = make_service()
        serve(sim, service)
        cluster = _wrap(sim, fabric, service)
        cluster.migrate(service.ring.shards[0])
        assert sorted(service.ring_history) == [0, 1]
        assert all(
            service.ring_history[v].version == v for v in service.ring_history
        )


# ---------------------------------------------------------------------------
# Topology API
# ---------------------------------------------------------------------------


def _wrap(sim, fabric, service) -> Cluster:
    """A Cluster handle over an already-built service (test harness)."""
    from repro.bench.systems import SystemSpec

    spec = SystemSpec(
        name="sharded",
        build=lambda f: service,
        wait_ready=lambda s: s.wait_until_serving(timeout_us=30 * SEC),
        preload=lambda s, items: None,
        client_factory=ShardRouter,
    )
    return Cluster(spec, fabric, service)


class TestTopologyApi:
    def test_topology_snapshot_fields(self):
        sim, fabric, service = make_service(shards=2, backups=1)
        serve(sim, service)
        cluster = _wrap(sim, fabric, service)
        topo = cluster.topology()
        assert isinstance(topo, Topology)
        assert topo.shards == service.ring.shards
        assert topo.ring_version == 0
        assert set(topo.groups) >= set(topo.shards)
        for shard in topo.shards:
            assert topo.coordinator_of(shard) is not None
        assert topo.pool is not None and topo.pool.kind == "backup_pool"

    def test_scale_out_and_back(self):
        sim, fabric, service = make_service(shards=2)
        serve(sim, service)
        cluster = _wrap(sim, fabric, service)
        router = cluster.client()
        items = {b"elastic:%02d" % i: b"v%02d" % i for i in range(24)}

        def preload():
            for key, value in items.items():
                yield from router.put(key, value)

        run(sim, preload())
        topo = cluster.scale(shards=4)
        assert len(topo.shards) == 4 and topo.ring_version == 2
        topo = cluster.scale(shards=2)
        assert len(topo.shards) == 2 and topo.ring_version == 4

        def readback():
            out = {}
            for key in items:
                out[key] = yield from router.get(key)
            return out

        assert run(sim, readback()) == items

    def test_scale_backups_resizes_pool(self):
        sim, fabric, service = make_service(shards=2, backups=1)
        serve(sim, service)
        cluster = _wrap(sim, fabric, service)
        cluster.scale(backups=3)
        assert service.pool.capacity == 3

    def test_scale_auto_returns_running_reconciler(self):
        sim, fabric, service = make_service(shards=2)
        serve(sim, service)
        cluster = _wrap(sim, fabric, service)
        reconciler = cluster.scale(auto=True, config=ReconcilerConfig(
            interval_us=20 * MS))
        assert isinstance(reconciler, Reconciler)
        sim.run(until=sim.now + 100 * MS)
        assert reconciler.rounds >= 4
        reconciler.stop()

    def test_migrate_merge_then_retire(self):
        sim, fabric, service = make_service(shards=2)
        serve(sim, service)
        cluster = _wrap(sim, fabric, service)
        victim, survivor = service.ring.shards
        manager = cluster.migrate(victim, to=survivor)
        assert manager.done and manager.cutover_at is not None
        assert service.ring.shards == (survivor,)
        # The merged-away group is off the ring but still provisioned
        # until retired — visible in the topology, then gone.
        assert victim in cluster.topology().groups
        service.retire_group(victim)
        assert victim not in cluster.topology().groups

    def test_mutation_rejected_on_non_sharded(self):
        from repro.bench.calibration import SMOKE_SCALE

        cluster = Cluster.build("sift", seed=3, scale=SMOKE_SCALE)
        with pytest.raises(ReproError):
            cluster.scale(shards=2)

    def test_deprecated_reach_ins_warn_once(self):
        sim, fabric, service = make_service()
        serve(sim, service)
        import repro.compat as compat

        compat._WARNED.discard(("ShardedKvService", "group"))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            service.group(service.ring.shards[0])
            service.group(service.ring.shards[1])
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "Cluster.topology()" in str(deprecations[0].message)


# ---------------------------------------------------------------------------
# Stats protocol
# ---------------------------------------------------------------------------


class TestStatsProtocol:
    def test_every_surface_speaks_snapshot(self):
        sim, fabric, service = make_service()
        serve(sim, service)
        cluster = _wrap(sim, fabric, service)
        router = cluster.client()
        run(sim, router.put(b"stats", b"v"))
        manager = cluster.migrate(service.ring.shards[0])
        reconciler = Reconciler(fabric, service)

        surfaces = [
            service.pool,
            router,
            router.clients[service.ring.shards[0]],
            manager,
            reconciler,
        ]
        kinds = set()
        for surface in surfaces:
            snap = snapshot_of(surface)
            assert isinstance(snap, StatsSnapshot)
            assert snap.name
            for value in {**snap.counters, **snap.gauges}.values():
                assert isinstance(value, float)
            kinds.add(snap.kind)
        assert kinds == {
            "backup_pool", "shard_router", "kv_client", "migration",
            "reconciler",
        }

    def test_router_cache_invalidation_follows_ring_version(self):
        sim, fabric, service = make_service()
        serve(sim, service)
        cluster = _wrap(sim, fabric, service)
        router = cluster.client()
        run(sim, router.put(b"before-split", b"v"))
        assert router.ring_version == 0
        cluster.migrate(service.ring.shards[0])
        run(sim, router.get(b"before-split"))  # any op resyncs
        assert router.ring_version == service.ring.version
        assert router.cache_invalidations >= 1
        assert set(router.clients) == set(service.ring.shards)


# ---------------------------------------------------------------------------
# Linearizability under migration
# ---------------------------------------------------------------------------


def _recorded_client(sim, history, router, keys, stop, gap_us=500.0,
                     max_ops=90):
    # max_ops keeps every per-key history under the exhaustive
    # checker's 64-op limit (ops per key ~= max_ops / len(keys)).
    def loop():
        count = 0
        while not stop["stop"] and count < max_ops:
            key = keys[count % len(keys)]
            read = count % 3 == 2
            value = None if read else b"w%05d" % count
            invoked = sim.now
            try:
                if read:
                    result = yield from router.get(key)
                    history.record(Op(key, "get", result, invoked, sim.now))
                else:
                    yield from router.put(key, value)
                    history.record(Op(key, "put", value, invoked, sim.now))
            except KvRequestFailed:
                history.record(
                    Op(key, "get" if read else "put", value, invoked, None)
                )
            count += 1
            yield sim.timeout(gap_us)

    return loop


class TestLincheckUnderMigration:
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_split_migration_is_linearizable(self, seed):
        sim, fabric, service = make_service(seed=seed)
        serve(sim, service)
        cluster = _wrap(sim, fabric, service)
        history = History()
        stop = {"stop": False}
        keys = [b"mig:%02d" % i for i in range(6)]
        routers = [cluster.client(name=f"lc{i}") for i in range(3)]
        for i, router in enumerate(routers):
            host = fabric.host(f"lc{i}")
            host.spawn(
                _recorded_client(sim, history, router, keys[i * 2:i * 2 + 2],
                                 stop)(),
                name=f"lc{i}",
            )
        sim.run(until=sim.now + 20 * MS)
        manager = cluster.migrate(service.ring.shards[0],
                                  forward_window_us=30 * MS)
        stop["stop"] = True
        sim.run(until=sim.now + 20 * MS)

        assert manager.done
        assert manager.stats["copied"] > 0
        ok, offending = check_history(history)
        assert ok, f"non-linearizable history on {offending!r} (seed {seed})"
        # Every client write acked before the check must read back.
        last = {}
        for op in history.ops:
            if op.kind == "put" and op.responded_at is not None:
                last[op.key] = op.value

        def readback():
            for key, expect in sorted(last.items()):
                value = yield from routers[0].get(key)
                assert value == expect, key
        run(sim, readback())

    def test_merge_migration_is_linearizable(self):
        sim, fabric, service = make_service(seed=11)
        serve(sim, service)
        cluster = _wrap(sim, fabric, service)
        history = History()
        stop = {"stop": False}
        router = cluster.client(name="mc")
        fabric.host("mc").spawn(
            _recorded_client(sim, history, router,
                             [b"mg:%d" % i for i in range(4)], stop)(),
            name="mc",
        )
        sim.run(until=sim.now + 10 * MS)
        victim, survivor = service.ring.shards
        cluster.migrate(victim, to=survivor, forward_window_us=30 * MS)
        stop["stop"] = True
        sim.run(until=sim.now + 20 * MS)
        ok, offending = check_history(history)
        assert ok, f"non-linearizable merge history on {offending!r}"


# ---------------------------------------------------------------------------
# Chaos mid-migration
# ---------------------------------------------------------------------------


class TestMigrationChaos:
    def test_source_coordinator_crash_mid_copy_restarts_scan(self):
        """Crash the source coordinator while the copy pass runs: the
        manager restarts the scan on the promoted successor (the
        mirror-hook window died with the old coordinator) and still
        finishes with zero acked-write loss."""
        sim, fabric, service = make_service(seed=5)
        serve(sim, service)
        cluster = _wrap(sim, fabric, service)
        router = cluster.client()
        source = service.ring.shards[0]
        items = {}

        def preload():
            for i in range(120):
                key = b"cc:%03d" % i
                if service.shard_for(key) == source:
                    yield from router.put(key, b"v%03d" % i)
                    items[key] = b"v%03d" % i

        run(sim, preload())
        manager = MigrationManager.split(
            fabric, service, source, forward_window_us=30 * MS,
            scan_page_buckets=64,
        )
        migration = sim.spawn(manager.run(), name="mig")

        def crash_mid_scan():
            # Wait for the copy pass to be demonstrably underway, then
            # kill the coordinator it is scanning.
            while manager.stats["pages"] < 1:
                yield sim.timeout(20.0)
            assert not manager.done
            service.crash_coordinator(shard=source)

        sim.spawn(crash_mid_scan(), name="chaos")
        sim.run_until_settled(migration, deadline=120 * SEC)
        if migration.failed:
            raise migration.exception
        assert manager.done
        assert manager.stats["restarts"] >= 1

        def readback():
            for key, expect in sorted(items.items()):
                value = yield from router.get(key)
                assert value == expect, key
        run(sim, readback())

    def test_crash_coordinator_is_ring_version_aware(self):
        """A shard name written against the pre-split ring still lands
        on the group owning that key range under the current ring."""
        sim, fabric, service = make_service()
        serve(sim, service)
        cluster = _wrap(sim, fabric, service)
        original = service.ring.shards[0]
        cluster.migrate(original)  # split: half of `original` moved away
        run(sim, service.wait_until_serving(timeout_us=30 * SEC))
        resolved = service.resolve_shard(original, ring_version=0)
        target = service.coordinators()[resolved]
        crashed = service.crash_coordinator(shard=original, ring_version=0)
        assert crashed is not None and crashed.host.name == target
        assert service.coordinators()[resolved] is None


# ---------------------------------------------------------------------------
# Reconciler policy
# ---------------------------------------------------------------------------


class TestReconciler:
    def test_splits_hot_shard_from_observed_load(self):
        sim, fabric, service = make_service(seed=9)
        serve(sim, service)
        cluster = _wrap(sim, fabric, service)
        router = cluster.client()
        hot = service.ring.shards[0]
        hot_keys = [k for k in (b"h%03d" % i for i in range(200))
                    if service.shard_for(k) == hot][:8]
        reconciler = cluster.scale(auto=True, config=ReconcilerConfig(
            interval_us=10 * MS,
            min_split_ops=20,
            imbalance_factor=1.2,
            max_shards=3,
            forward_window_us=20 * MS,
        ))
        stop = {"stop": False}

        def hammer():
            count = 0
            while not stop["stop"]:
                yield from router.put(hot_keys[count % len(hot_keys)], b"x")
                count += 1
                yield sim.timeout(100.0)

        fabric.add_host("hammer", cores=2).spawn(hammer(), name="hammer")
        sim.run(until=sim.now + 250 * MS)
        stop["stop"] = True
        reconciler.stop()
        sim.run(until=sim.now + 10 * MS)
        assert reconciler.splits >= 1
        assert len(service.ring.shards) == 3
        assert ("split", ) == tuple({a for _t, a, _d in reconciler.log
                                     if a == "split"})

    def test_pool_resize_follows_fig8_replay(self):
        sim, fabric, service = make_service(backups=1,
                                            provisioning_delay_us=100 * SEC)
        serve(sim, service)
        reconciler = Reconciler(fabric, service, ReconcilerConfig(
            interval_us=10 * MS, pool_max=4))
        # Two promotion requests far closer together than a 100s
        # provisioning delay: the replay must ask for a second spare.
        service.crash_coordinator(shard=service.ring.shards[0])
        sim.run(until=sim.now + 60 * MS)
        service.crash_coordinator(shard=service.ring.shards[1])
        sim.run(until=sim.now + 60 * MS)
        # The second request is still waiting (one spare, 100s
        # provisioning) — it must be visible to the replay anyway.
        assert len(service.pool.request_log) == 2
        assert len(service.pool.promotion_log) == 1
        run(sim, reconciler.reconcile_once())
        assert service.pool.capacity == 2
        assert reconciler.pool_resizes == 1


# ---------------------------------------------------------------------------
# Hotspot sampler
# ---------------------------------------------------------------------------


class TestHotspotSampler:
    def test_retarget_is_a_bijection_and_stripes_hot_ranks(self):
        import numpy as np

        from repro.workloads.generator import HotspotZipfSampler

        ring = HashRing(["a", "b", "c"])
        sampler = HotspotZipfSampler(120, ring)
        sampler.retarget(1, 30)
        mapping = sampler._map
        assert sorted(mapping.tolist()) == list(range(120))  # bijection
        ranks = np.arange(30, dtype=np.int64)
        assert set(sampler.shard_index_batch(ranks).tolist()) == {1}
        # Rendered keys follow the striping invariant: hot ranks render
        # keys the *ring* places on shard "b".
        for rank in range(30):
            assert ring.shard_for(sampler.key(rank)) == "b"

    def test_retarget_consumes_no_rng(self):
        import random

        from repro.workloads.generator import HotspotZipfSampler

        ring = HashRing(["a", "b"])
        plain = HotspotZipfSampler(64, ring)
        shifted = HotspotZipfSampler(64, ring)
        rng_a, rng_b = random.Random(13), random.Random(13)
        first = plain.sample_batch(rng_a, 50)
        shifted.retarget(0, 16)
        second = shifted.sample_batch(rng_b, 50)
        assert first.tolist() == second.tolist()  # same rank stream
