"""Unit tests for the pin-aware LRU value cache."""

from repro.kv.cache import ValueCache


class TestBasics:
    def test_miss_then_fill_then_hit(self):
        cache = ValueCache(4)
        hit, _value = cache.get(b"k")
        assert not hit
        cache.fill(b"k", b"v", 100)
        hit, value = cache.get(b"k")
        assert hit and value == b"v"

    def test_put_overwrites(self):
        cache = ValueCache(4)
        cache.put(b"k", b"v1")
        cache.put(b"k", b"v2")
        assert cache.get(b"k") == (True, b"v2")

    def test_block_addr_tracking(self):
        cache = ValueCache(4)
        cache.fill(b"k", b"v", 4096)
        assert cache.block_addr_of(b"k") == 4096
        assert cache.block_addr_of(b"missing") is None

    def test_hit_rate(self):
        cache = ValueCache(4)
        cache.put(b"k", b"v")
        cache.get(b"k")
        cache.get(b"other")
        assert cache.hit_rate == 0.5

    def test_len_and_contains(self):
        cache = ValueCache(4)
        cache.put(b"a", b"1")
        assert len(cache) == 1
        assert b"a" in cache and b"b" not in cache


class TestEviction:
    def test_lru_eviction_order(self):
        cache = ValueCache(2)
        cache.put(b"a", b"1")
        cache.put(b"b", b"2")
        cache.get(b"a")  # refresh a
        cache.put(b"c", b"3")  # evicts b
        assert b"a" in cache and b"c" in cache and b"b" not in cache

    def test_pinned_entries_survive_eviction(self):
        """§4.2: entries with pending updates are never evicted."""
        cache = ValueCache(2)
        cache.put(b"pinned", b"p", pending=True)
        cache.put(b"a", b"1")
        cache.put(b"b", b"2")
        cache.put(b"c", b"3")
        assert b"pinned" in cache

    def test_unpin_restores_evictability(self):
        cache = ValueCache(1)
        cache.put(b"k", b"v", pending=True)
        cache.applied(b"k", 128)
        cache.put(b"other", b"x")
        assert b"k" not in cache

    def test_multiple_pending_updates_need_multiple_applied(self):
        cache = ValueCache(1)
        cache.put(b"k", b"v1", pending=True)
        cache.put(b"k", b"v2", pending=True)
        cache.applied(b"k", None)
        cache.put(b"other", b"x")
        assert b"k" in cache  # still one pending
        cache.applied(b"k", None)
        cache.put(b"other2", b"y")
        assert b"k" not in cache

    def test_zero_capacity(self):
        cache = ValueCache(0)
        cache.put(b"k", b"v")
        assert b"k" not in cache


class TestConsistency:
    def test_fill_does_not_overwrite_pending(self):
        """A racing remote read must not clobber a newer pending value."""
        cache = ValueCache(4)
        cache.put(b"k", b"new", pending=True)
        cache.fill(b"k", b"stale-from-remote", 64)
        assert cache.get(b"k") == (True, b"new")

    def test_fill_updates_applied_entry(self):
        cache = ValueCache(4)
        cache.put(b"k", b"v1", pending=True)
        cache.applied(b"k", 64)
        cache.fill(b"k", b"v2", 64)
        assert cache.get(b"k") == (True, b"v2")

    def test_tombstone_hit_reports_deleted(self):
        """A pending delete must hit as 'known deleted', not miss."""
        cache = ValueCache(4)
        cache.put(b"k", b"v")
        cache.mark_deleted(b"k")
        hit, value = cache.get(b"k")
        assert hit and value is None

    def test_tombstone_removed_once_applied(self):
        cache = ValueCache(4)
        cache.mark_deleted(b"k", pending=True)
        cache.applied(b"k", None)
        assert b"k" not in cache

    def test_fill_does_not_resurrect_tombstone(self):
        cache = ValueCache(4)
        cache.mark_deleted(b"k", pending=True)
        cache.fill(b"k", b"zombie", 64)
        hit, value = cache.get(b"k")
        assert hit and value is None

    def test_put_after_tombstone_revives(self):
        cache = ValueCache(4)
        cache.mark_deleted(b"k", pending=True)
        cache.applied(b"k", None)
        cache.put(b"k", b"back")
        assert cache.get(b"k") == (True, b"back")

    def test_applied_on_unknown_key_is_noop(self):
        cache = ValueCache(4)
        cache.applied(b"ghost", 64)  # no exception
