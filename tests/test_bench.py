"""Tests for the benchmark harness itself (small scales)."""

import pytest

from repro.bench import (
    BenchScale,
    epaxos_spec,
    raft_spec,
    run_latency,
    run_throughput,
    run_timeline,
    sift_spec,
)
from repro.bench.metrics import percentile
from repro.bench.report import bar_table, kv_table, series_table, sparkline
from repro.sim.units import MS, SEC
from repro.workloads import WORKLOADS

TINY = BenchScale(
    keys=512,
    warmup_us=10 * MS,
    measure_us=30 * MS,
    clients=6,
    wal_entries=512,
    kv_wal_entries=512,
)


class TestPercentile:
    def test_simple(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0
        assert percentile([5.0], 99) == 5.0
        assert percentile([1.0, 2.0], 0) == 1.0
        assert percentile([1.0, 2.0], 100) == 2.0

    def test_empty_returns_default(self):
        # A timeline window that completed zero ops (mid-failover under
        # chaos) must report a defined value, not crash the report.
        assert percentile([], 50) == 0.0
        assert percentile([], 99, default=-1.0) == -1.0

    def test_metrics_empty_window_latency(self):
        from repro.bench.metrics import Metrics

        metrics = Metrics()
        metrics.begin(0.0)
        metrics.end(100.0)
        assert metrics.latency("read", 50) == 0.0
        assert metrics.latency("write", 95) == 0.0
        assert metrics.throughput() == 0.0


class TestReport:
    def test_bar_table_renders(self):
        text = bar_table("T", ["a", "b"], {"sys": [1000.0, 2000.0]})
        assert "T" in text and "sys" in text and "1,000" in text

    def test_series_table_renders(self):
        text = series_table("T", "x", "y", {"s": [(1, 2.0)]})
        assert "[s]" in text

    def test_kv_table_renders(self):
        assert "k  v" in kv_table("T", [("k", "v")])

    def test_sparkline(self):
        line = sparkline([0, 1, 2, 4])
        assert len(line) == 4
        assert sparkline([]) == ""


class TestRunners:
    @pytest.mark.parametrize(
        "spec_factory",
        [
            lambda: sift_spec(scale=TINY),
            lambda: raft_spec(scale=TINY),
            lambda: epaxos_spec(scale=TINY),
        ],
        ids=["sift", "raft", "epaxos"],
    )
    def test_throughput_runs_and_is_positive(self, spec_factory):
        result = run_throughput(spec_factory(), WORKLOADS["read-heavy"], scale=TINY)
        assert result.ops_per_sec > 0
        assert result.errors == 0

    def test_throughput_deterministic(self):
        spec = sift_spec(scale=TINY)
        a = run_throughput(spec, WORKLOADS["mixed"], scale=TINY, seed=3)
        b = run_throughput(sift_spec(scale=TINY), WORKLOADS["mixed"], scale=TINY, seed=3)
        assert a.ops_per_sec == b.ops_per_sec
        assert a.completed == b.completed

    def test_latency_percentiles_present(self):
        result = run_latency(sift_spec(scale=TINY), WORKLOADS["mixed"], 2, scale=TINY)
        assert result.read_p50 is not None and result.read_p50 > 0
        assert result.write_p50 is not None
        assert result.read_p95 >= result.read_p50

    def test_read_only_has_no_write_latencies(self):
        result = run_latency(sift_spec(scale=TINY), WORKLOADS["read-only"], 2, scale=TINY)
        assert result.write_p50 is None

    def test_sift_preload_is_readable_through_the_client(self):
        """The synchronous preloader must be indistinguishable from puts."""
        from repro.kv.client import KvClient
        from repro.net.fabric import Fabric
        from repro.sim.engine import Simulator
        from repro.sim.rng import RngStreams
        from repro.workloads.generator import KeySampler

        for ec in (False, True):
            spec = sift_spec(erasure_coding=ec, scale=TINY)
            sim = Simulator()
            fabric = Fabric(sim, rng=RngStreams(seed=2))
            group = spec.build(fabric)
            ready = sim.spawn(spec.wait_ready(group), name="ready")
            sim.run_until_settled(ready, deadline=5 * SEC)
            assert ready.ok
            sampler = KeySampler(TINY.keys)
            spec.preload(group, ((sampler.key(i), b"pre-%d" % i) for i in range(64)))
            client = KvClient(fabric.add_host("c", cores=2), fabric, group)

            def check():
                for i in (0, 13, 63):
                    value = yield from client.get(sampler.key(i))
                    assert value == b"pre-%d" % i, (ec, i, value)
                # Preloaded keys are updatable and the update wins.
                yield from client.put(sampler.key(13), b"updated")
                return (yield from client.get(sampler.key(13)))

            process = sim.spawn(check())
            sim.run_until_settled(process, deadline=20 * SEC)
            assert process.ok, process.exception
            assert process.value == b"updated"

    def test_timeline_records_event_and_series(self):
        fired = []

        def fault(group):
            fired.append(True)
            group.crash_memory_node(2)

        result = run_timeline(
            sift_spec(scale=TINY),
            WORKLOADS["read-heavy"],
            4,
            duration_us=0.5 * SEC,
            events=[(0.2 * SEC, "kill", fault)],
            scale=TINY,
        )
        assert fired == [True]
        assert result.events[0][1] == "kill"
        assert len(result.series) >= 4
        assert sum(ops for _t, ops in result.series) > 0
