"""Unit tests for the chaos layer: schedules, interceptors, devices,
symbolic targeting, and the random explorer."""

import pytest

from repro.chaos import (
    ChaosController,
    ChaosSpace,
    FaultSchedule,
    LEADER,
    MessageChaos,
    ScheduleExplorer,
    UnsupportedFault,
    adapter_for,
    random_schedule,
    shrink,
)
from repro.net.fabric import Verdict
from repro.net.latency import FixedLatency
from repro.rdma.errors import RdmaTimeout
from repro.rdma.nic import Rnic
from repro.sim import MS, SEC
from repro.testing import make_sim


class TestFaultSchedule:
    def test_actions_sort_by_time_with_stable_ties(self):
        schedule = (
            FaultSchedule()
            .heal(300 * MS)
            .crash_leader(100 * MS)
            .crash_memory_node(100 * MS, 2)
        )
        kinds = [a.kind for a in schedule.sorted_actions()]
        assert kinds == ["crash_node", "crash_memory_node", "heal"]

    def test_duration_and_length(self):
        schedule = FaultSchedule().crash_leader(50 * MS).heal(400 * MS)
        assert schedule.duration_us == 400 * MS
        assert len(schedule) == 2

    def test_signature_is_stable_and_hashable(self):
        def build():
            return FaultSchedule().crash_leader(10.0).drop_messages(20.0, 0.5)

        assert build().signature() == build().signature()
        hash(build().signature())

    def test_probe_signature_uses_label_not_callable(self):
        first = FaultSchedule().probe(10.0, lambda g: None, label="watch")
        second = FaultSchedule().probe(10.0, lambda g: None, label="watch")
        assert first.signature() == second.signature()

    def test_without_removes_one_action(self):
        schedule = FaultSchedule().crash_leader(10.0).heal(20.0)
        shrunk = schedule.without(1)
        assert [a.kind for a in shrunk] == ["crash_node"]
        assert len(schedule) == 2  # original untouched

    def test_failure_trace_round_trip(self):
        from repro.cluster.trace import FailureEvent

        events = [FailureEvent(10.0, 3), FailureEvent(250.0, 7)]
        schedule = FaultSchedule.from_failure_trace(events)
        assert schedule.to_failure_trace() == events


class _Probe:
    """Counts arrivals of messages sent through a fabric."""

    def __init__(self, fabric):
        self.fabric = fabric
        self.src = fabric.add_host("src")
        self.dst = fabric.add_host("dst")
        self.arrivals = []

    def send(self, stream="net"):
        self.fabric.deliver(
            self.src,
            self.dst,
            100,
            lambda: self.arrivals.append(self.fabric.sim.now),
            latency=FixedLatency(5.0),
            stream=stream,
        )


class TestFabricInterception:
    def test_no_interceptor_means_no_change(self):
        sim, fabric = make_sim(seed=9)
        probe = _Probe(fabric)
        probe.send()
        sim.run(until=1 * MS)
        assert len(probe.arrivals) == 1
        assert fabric.messages_dropped == 0

    def test_drop_verdict_loses_the_message(self):
        sim, fabric = make_sim(seed=9)
        probe = _Probe(fabric)
        fabric.add_interceptor(lambda s, d, n, st: Verdict(drop=True))
        probe.send()
        sim.run(until=1 * MS)
        assert probe.arrivals == []
        assert fabric.messages_dropped == 1

    def test_delay_verdict_postpones_arrival(self):
        sim, fabric = make_sim(seed=9)
        probe = _Probe(fabric)
        fabric.add_interceptor(lambda s, d, n, st: Verdict(extra_delay_us=500.0))
        probe.send()
        sim.run(until=1 * MS)
        assert probe.arrivals == [505.0]

    def test_duplicate_verdict_delivers_twice(self):
        sim, fabric = make_sim(seed=9)
        probe = _Probe(fabric)
        fabric.add_interceptor(lambda s, d, n, st: Verdict(duplicates=1))
        probe.send()
        sim.run(until=1 * MS)
        assert len(probe.arrivals) == 2
        assert fabric.messages_duplicated == 1

    def test_remove_interceptor_restores_clean_path(self):
        sim, fabric = make_sim(seed=9)
        probe = _Probe(fabric)
        interceptor = fabric.add_interceptor(lambda s, d, n, st: Verdict(drop=True))
        fabric.remove_interceptor(interceptor)
        probe.send()
        sim.run(until=1 * MS)
        assert len(probe.arrivals) == 1

    def test_oneway_block_cuts_exactly_one_direction(self):
        sim, fabric = make_sim(seed=9)
        probe = _Probe(fabric)
        fabric.block_oneway("src", "dst")
        assert not fabric.reachable("src", "dst")
        assert fabric.reachable("dst", "src")
        probe.send()
        sim.run(until=1 * MS)
        assert probe.arrivals == []
        fabric.unblock_oneway("src", "dst")
        probe.send()
        sim.run(until=sim.now + 1 * MS)
        assert len(probe.arrivals) == 1


class TestMessageChaos:
    def test_idle_chaos_is_not_installed(self):
        _sim, fabric = make_sim(seed=4)
        chaos = MessageChaos(fabric)
        assert fabric._interceptors == []
        chaos.set_drop(0.5)
        assert fabric._interceptors == [chaos]
        chaos.clear()
        assert fabric._interceptors == []

    def test_stream_filter_spares_other_streams(self):
        sim, fabric = make_sim(seed=4)
        probe = _Probe(fabric)
        chaos = MessageChaos(fabric)
        chaos.set_drop(1.0, streams=("rdma",))
        probe.send(stream="net")
        sim.run(until=1 * MS)
        assert len(probe.arrivals) == 1
        probe.send(stream="rdma")
        sim.run(until=sim.now + 1 * MS)
        assert len(probe.arrivals) == 1  # the rdma one was dropped

    def test_same_seed_same_decisions(self):
        def run_once():
            sim, fabric = make_sim(seed=11)
            probe = _Probe(fabric)
            chaos = MessageChaos(fabric)
            chaos.set_drop(0.5)
            for _ in range(40):
                probe.send()
            sim.run(until=1 * MS)
            return len(probe.arrivals)

        first, second = run_once(), run_once()
        assert first == second
        assert 0 < first < 40  # some dropped, some delivered


class TestNicFaults:
    def _pair(self):
        sim, fabric = make_sim(seed=3)
        a = fabric.add_host("a")
        b = fabric.add_host("b")
        nic_a = Rnic(a, fabric)
        Rnic(b, fabric)
        return sim, nic_a, b

    def test_failed_nic_times_out_verbs(self):
        sim, nic, target = self._pair()
        nic.fail_queues()
        done = nic.transfer(target, 64, 64, lambda: "ok", timeout_us=500.0)
        sim.run(until=1 * MS)
        assert done.settled and done.failed
        assert isinstance(done.exception, RdmaTimeout)

    def test_restored_nic_flows_again(self):
        sim, nic, target = self._pair()
        nic.fail_queues()
        nic.restore_queues()
        done = nic.transfer(target, 64, 64, lambda: "ok", timeout_us=500.0)
        sim.run(until=1 * MS)
        assert done.settled and done.ok
        assert done.value == "ok"


class TestControllerTargeting:
    def _raft(self):
        from repro.baselines.raft import RaftCluster, RaftConfig

        sim, fabric = make_sim(seed=6)
        cluster = RaftCluster(fabric, RaftConfig(f=1), name="raft")
        cluster.start()
        sim.run(until=200 * MS)
        return sim, cluster

    def test_symbolic_leader_resolves_at_injection_time(self):
        sim, cluster = self._raft()
        leader = cluster.leader()
        assert leader is not None
        controller = ChaosController.for_cluster(cluster)
        controller.apply(FaultSchedule().crash_leader(0).sorted_actions()[0])
        assert not leader.host.alive

    def test_follower_target_spares_the_leader(self):
        sim, cluster = self._raft()
        leader = cluster.leader()
        controller = ChaosController.for_cluster(cluster)
        controller.apply(FaultSchedule().crash_follower(0).sorted_actions()[0])
        assert leader.host.alive
        assert sum(1 for n in cluster.nodes if not n.host.alive) == 1

    def test_memory_node_fault_unsupported_on_raft(self):
        _sim, cluster = self._raft()
        controller = ChaosController.for_cluster(cluster)
        action = FaultSchedule().crash_memory_node(0, 1).sorted_actions()[0]
        with pytest.raises(UnsupportedFault):
            controller.apply(action)

    def test_adapter_dispatch(self):
        from repro.baselines.epaxos import EPaxosCluster, EPaxosConfig

        _sim, fabric = make_sim(seed=6)
        cluster = EPaxosCluster(fabric, EPaxosConfig(f=1))
        assert adapter_for(cluster).kind == "epaxos"
        with pytest.raises(TypeError):
            adapter_for(object())


class TestSiftDeviceFaults:
    """NIC failure and CPU stall applied to a live Sift group end-to-end."""

    def test_coordinator_nic_failure_forces_failover(self):
        from repro.testing import make_group

        sim, fabric, group = make_group(seed=8)
        sim.run(until=300 * MS)
        first = group.coordinator()
        controller = ChaosController.for_cluster(group)
        controller.apply(FaultSchedule().fail_nic(0, LEADER).sorted_actions()[0])
        sim.run(until=sim.now + 1 * SEC)
        # The NIC-dead coordinator cannot renew its lease: someone else
        # (with a working NIC) must take over, and it must step down.
        current = group.coordinator()
        assert current is not None and current is not first
        assert not first.is_coordinator

    def test_cpu_stall_delays_but_does_not_depose(self):
        from repro.testing import make_group

        sim, fabric, group = make_group(seed=8)
        sim.run(until=300 * MS)
        first = group.coordinator()
        controller = ChaosController.for_cluster(group)
        controller.apply(
            FaultSchedule().stall_cpu(0, LEADER, 5 * MS, cores=1).sorted_actions()[0]
        )
        sim.run(until=sim.now + 1 * SEC)
        # A 5ms single-core stall is well inside the lease budget.
        assert group.coordinator() is first


class TestExplorer:
    def _space(self):
        return ChaosSpace(nodes=3, horizon_us=900 * MS)

    def test_same_seed_same_schedule(self):
        space = self._space()
        assert random_schedule(42, space).signature() == random_schedule(42, space).signature()

    def test_different_seeds_differ(self):
        space = self._space()
        signatures = {random_schedule(seed, space).signature() for seed in range(12)}
        assert len(signatures) > 1

    def test_generated_schedules_end_recovered(self):
        space = self._space()
        for seed in range(12):
            schedule = random_schedule(seed, space)
            kinds = [a.kind for a in schedule]
            if any(k == "crash_node" for k in kinds):
                assert "restart_crashed" in kinds
            if any(k in ("partition", "partition_oneway", "isolate") for k in kinds):
                assert "heal" in kinds

    def test_shrink_finds_minimal_reproducer(self):
        schedule = (
            FaultSchedule()
            .drop_messages(10 * MS, 0.1)
            .crash_leader(20 * MS)
            .heal(30 * MS)
            .clear_message_faults(40 * MS)
            .restart_crashed(50 * MS)
        )
        minimal = shrink(
            schedule, lambda s: any(a.kind == "crash_node" for a in s)
        )
        assert [a.kind for a in minimal] == ["crash_node"]

    def test_shrink_keeps_failing_schedule_when_nothing_removable(self):
        schedule = FaultSchedule().crash_leader(10 * MS)
        minimal = shrink(schedule, lambda s: len(s) == 1)
        assert minimal.signature() == schedule.signature()

    def test_explorer_runs_clean_seeds_without_failure(self):
        from repro.baselines.raft import RaftCluster, RaftConfig

        def build_raft(fabric):
            cluster = RaftCluster(fabric, RaftConfig(f=1), name="raft")
            cluster.start()
            return cluster

        explorer = ScheduleExplorer(
            build_raft, self._space(), runner_kwargs=dict(clients=2, keys_per_client=2)
        )
        assert explorer.explore(range(7, 9)) is None
