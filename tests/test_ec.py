"""Unit and property tests for GF(2^8) and Cauchy Reed-Solomon codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import CauchyRSCode, DecodeError, gf_add, gf_div, gf_inv, gf_mul, gf_pow
from repro.ec.matrix import cauchy_matrix, gf_mat_inv, gf_matmul, identity

elements = st.integers(0, 255)
nonzero = st.integers(1, 255)


class TestGF256:
    @given(a=elements, b=elements)
    def test_addition_is_xor_and_commutative(self, a, b):
        assert gf_add(a, b) == (a ^ b)
        assert gf_add(a, b) == gf_add(b, a)

    @given(a=elements)
    def test_additive_inverse_is_self(self, a):
        assert gf_add(a, a) == 0

    @given(a=elements, b=elements)
    def test_multiplication_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=120)
    def test_multiplication_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=120)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(a=elements)
    def test_multiplicative_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(a=elements)
    def test_multiply_by_zero(self, a):
        assert gf_mul(a, 0) == 0

    @given(a=nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    @given(a=elements, b=nonzero)
    def test_division_inverts_multiplication(self, a, b):
        assert gf_mul(gf_div(a, b), b) == a

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(1, 0)

    @given(a=nonzero, n=st.integers(0, 50))
    def test_pow_matches_repeated_multiplication(self, a, n):
        expected = 1
        for _ in range(n):
            expected = gf_mul(expected, a)
        assert gf_pow(a, n) == expected

    @given(a=nonzero)
    def test_pow_negative(self, a):
        assert gf_mul(gf_pow(a, -1), a) == 1

    def test_field_order(self):
        # The multiplicative group has order 255: a^255 == 1.
        for a in (2, 3, 29, 255):
            assert gf_pow(a, 255) == 1


class TestMatrices:
    def test_identity(self):
        eye = identity(4)
        assert eye.shape == (4, 4)
        assert eye[0, 0] == 1 and eye[0, 1] == 0

    def test_matmul_with_identity(self):
        rng = np.random.default_rng(1)
        matrix = rng.integers(0, 256, size=(4, 4), dtype=np.uint8)
        assert np.array_equal(gf_matmul(identity(4), matrix), matrix)
        assert np.array_equal(gf_matmul(matrix, identity(4)), matrix)

    def test_inverse_roundtrip(self):
        matrix = cauchy_matrix(4, 4)
        inverse = gf_mat_inv(matrix)
        assert np.array_equal(gf_matmul(matrix, inverse), identity(4))

    def test_singular_matrix_raises(self):
        singular = np.zeros((3, 3), dtype=np.uint8)
        singular[0] = [1, 2, 3]
        singular[1] = [1, 2, 3]
        singular[2] = [0, 0, 1]
        with pytest.raises(np.linalg.LinAlgError):
            gf_mat_inv(singular)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            gf_matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))
        with pytest.raises(ValueError):
            gf_mat_inv(np.zeros((2, 3), dtype=np.uint8))

    def test_cauchy_every_square_submatrix_invertible(self):
        matrix = cauchy_matrix(3, 3)
        # All 1x1, 2x2 and the 3x3 submatrices must be invertible.
        from itertools import combinations

        for size in (1, 2, 3):
            for rows in combinations(range(3), size):
                for cols in combinations(range(3), size):
                    sub = matrix[np.ix_(rows, cols)]
                    gf_mat_inv(sub)  # must not raise

    def test_cauchy_size_limit(self):
        with pytest.raises(ValueError):
            cauchy_matrix(200, 100)


class TestCauchyRSCode:
    @pytest.mark.parametrize("k,m", [(2, 1), (3, 2), (5, 4), (1, 1), (4, 0)])
    def test_encode_decode_all_data_shards(self, k, m):
        code = CauchyRSCode(k, m)
        block = bytes(range(256)) * 4
        chunks = code.encode(block)
        assert len(chunks) == k + m
        decoded = code.decode({i: chunks[i] for i in range(k)}, len(block))
        assert decoded == block

    @pytest.mark.parametrize("k,m", [(2, 1), (3, 2), (4, 3)])
    def test_decode_from_any_k_subset(self, k, m):
        from itertools import combinations

        code = CauchyRSCode(k, m)
        block = b"The quick brown fox jumps over the lazy dog" * 10
        chunks = code.encode(block)
        for subset in combinations(range(k + m), k):
            decoded = code.decode({i: chunks[i] for i in subset}, len(block))
            assert decoded == block

    def test_systematic_property(self):
        """Data shards are verbatim slices of the (padded) block (§5.1)."""
        code = CauchyRSCode(2, 1)
        block = bytes(range(100))
        chunks = code.encode(block)
        size = code.chunk_size(len(block))
        padded = block + bytes(size * 2 - len(block))
        assert chunks[0] == padded[:size]
        assert chunks[1] == padded[size:]

    def test_reconstruct_restores_all_shards(self):
        code = CauchyRSCode(3, 2)
        block = b"data" * 100
        chunks = code.encode(block)
        rebuilt = code.reconstruct({0: chunks[0], 3: chunks[3], 4: chunks[4]}, len(block))
        assert rebuilt == chunks

    def test_too_few_chunks_raises(self):
        code = CauchyRSCode(3, 2)
        chunks = code.encode(b"x" * 90)
        with pytest.raises(DecodeError):
            code.decode({0: chunks[0], 1: chunks[1]}, 90)

    def test_wrong_chunk_size_raises(self):
        code = CauchyRSCode(2, 1)
        chunks = code.encode(b"x" * 64)
        with pytest.raises(DecodeError):
            code.decode({0: chunks[0], 1: chunks[1][:-1]}, 64)

    def test_memory_reduction_factor(self):
        """Fm+1 reduction: stored bytes per node ~ B / (Fm+1) (§5.1)."""
        for fm in (1, 2, 3):
            code = CauchyRSCode(fm + 1, fm)
            block_len = 1040
            per_node = code.chunk_size(block_len)
            assert per_node <= (block_len + fm) // (fm + 1) + 1
            total = per_node * (2 * fm + 1)
            assert total < block_len * (2 * fm + 1) / fm  # strictly less than replication

    def test_empty_block(self):
        code = CauchyRSCode(2, 1)
        chunks = code.encode(b"")
        assert code.decode({0: chunks[0], 2: chunks[2]}, 0) == b""

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CauchyRSCode(0, 1)
        with pytest.raises(ValueError):
            CauchyRSCode(1, -1)
        with pytest.raises(ValueError):
            CauchyRSCode(200, 100)

    @given(
        data=st.binary(min_size=0, max_size=512),
        k=st.integers(1, 5),
        m=st.integers(0, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data, k, m):
        code = CauchyRSCode(k, m)
        chunks = code.encode(data)
        # Decode from the *last* k shards (maximally parity-heavy subset).
        subset = {i: chunks[i] for i in range(m, k + m)}
        assert code.decode(subset, len(data)) == data


class TestSeededErasureRoundTrips:
    """Property-style round trips under *random* erasure patterns.

    The happy-path suite always erases a fixed prefix/suffix of shards;
    real memory-node failures hit arbitrary subsets.  Each seed drives a
    reproducible stream of (payload, erasure-pattern) pairs with up to
    ``m`` erasures — the paper's tolerated-failure bound (§5.1).
    """

    @pytest.mark.parametrize("seed", [11, 29, 47])
    @pytest.mark.parametrize("k,m", [(2, 1), (3, 2), (4, 3), (5, 2)])
    def test_random_payload_random_erasures(self, seed, k, m):
        import random

        rng = random.Random(seed * 1_000 + k * 10 + m)
        code = CauchyRSCode(k, m)
        for _round in range(8):
            length = rng.randrange(0, 2_048)
            block = rng.randbytes(length)
            chunks = code.encode(block)
            erased = set(rng.sample(range(k + m), rng.randint(0, m)))
            surviving = {
                index: chunks[index]
                for index in range(k + m)
                if index not in erased
            }
            assert code.decode(surviving, length) == block
            # reconstruct() must also rebuild the erased shards verbatim.
            assert code.reconstruct(surviving, length) == chunks

    @pytest.mark.parametrize("seed", [5, 17])
    def test_one_erasure_beyond_f_fails_loudly(self, seed):
        import random

        rng = random.Random(seed)
        code = CauchyRSCode(3, 2)
        block = rng.randbytes(600)
        chunks = code.encode(block)
        erased = set(rng.sample(range(5), 3))  # m + 1 erasures
        surviving = {i: chunks[i] for i in range(5) if i not in erased}
        with pytest.raises(DecodeError):
            code.decode(surviving, len(block))

    @pytest.mark.parametrize("seed", [3, 13, 31])
    def test_gf256_random_matrix_solve_round_trip(self, seed):
        """gf256 linear algebra: random data through a Cauchy system and
        back through the inverse recovers the original exactly."""
        import random

        rng = random.Random(seed)
        size = rng.randint(2, 6)
        matrix = cauchy_matrix(size, size)
        data = np.array(
            [[rng.randrange(256) for _ in range(7)] for _ in range(size)],
            dtype=np.uint8,
        )
        encoded = gf_matmul(matrix, data)
        decoded = gf_matmul(gf_mat_inv(matrix), encoded)
        assert np.array_equal(decoded, data)
