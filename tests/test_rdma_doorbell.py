"""Doorbell-style verb batching: one PCIe charge, unchanged semantics.

``prepare_write`` + ``post_many`` must behave exactly like N unbatched
``write`` calls — same data landed, same per-target ordering, same
error and timeout behaviour — except that the batch pays
``verb_overhead_us`` once instead of N times.
"""

import pytest

from repro.net import Fabric
from repro.obs import collecting
from repro.rdma import (
    DoorbellQueue,
    MemoryRegion,
    QueuePair,
    RdmaError,
    RdmaListener,
    RdmaTimeout,
    Rnic,
)
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def fabric(sim):
    return Fabric(sim)


def _make_fanout(fabric, n_targets=3):
    """One requester NIC with a connected QP per target."""
    requester = fabric.add_host("requester", cores=2)
    nic = Rnic(requester, fabric)
    qps, regions = [], []
    for i in range(n_targets):
        target = fabric.add_host(f"target{i}", cores=1)
        listener = RdmaListener(target)
        region = MemoryRegion("data", 4096)
        listener.export(region)
        qps.append(QueuePair(nic, listener))
        regions.append(region)

    def connect():
        for qp in qps:
            yield requester.spawn(qp.connect(["data"]))

    fabric.sim.run_process(connect())
    return requester, nic, qps, regions


class TestPostMany:
    def test_batched_fanout_lands_everywhere(self, sim, fabric):
        _requester, nic, qps, regions = _make_fanout(fabric)
        posts = [qp.prepare_write("data", 0, b"payload") for qp in qps]
        events = nic.post_many(posts)
        sim.run()
        assert all(event.ok for event in events)
        assert all(region.read(0, 7) == b"payload" for region in regions)

    def test_prepare_does_not_touch_the_nic(self, sim, fabric):
        """Staging is free until the doorbell rings."""
        _requester, nic, qps, regions = _make_fanout(fabric)
        issued = nic.verbs_issued
        qps[0].prepare_write("data", 0, b"staged")
        sim.run()
        assert nic.verbs_issued == issued
        assert regions[0].read(0, 6) == bytes(6)

    def test_one_doorbell_charge_for_the_batch(self, fabric):
        """N batched posts settle sooner than N sequential unbatched
        writes: serialisation pays one ``verb_overhead_us``, not N."""
        sim = fabric.sim

        def settle_time(batched):
            sim2 = Simulator()
            fabric2 = Fabric(sim2)
            _req, nic, qps, _regions = _make_fanout(fabric2, n_targets=4)
            if batched:
                nic.post_many([qp.prepare_write("data", 0, b"x" * 64) for qp in qps])
            else:
                for qp in qps:
                    qp.write("data", 0, b"x" * 64)
            return sim2.run()

        unbatched, batched = settle_time(False), settle_time(True)
        # 4 posts share one 0.3us doorbell instead of paying 4.
        assert batched < unbatched
        assert unbatched - batched == pytest.approx(3 * 0.3, rel=0.2)

    def test_per_target_order_preserved(self, sim, fabric):
        """RC ordering: posts to the same target apply in post order,
        batched or not (last write wins on the overlapping slot)."""
        _requester, nic, qps, regions = _make_fanout(fabric, n_targets=1)
        qp, region = qps[0], regions[0]
        nic.post_many([
            qp.prepare_write("data", 0, b"first"),
            qp.prepare_write("data", 0, b"SECOND"),
        ])
        sim.run()
        assert region.read(0, 6) == b"SECOND"

    def test_failed_validation_is_skipped_not_flushed(self, sim, fabric):
        """An unconnected/ungranted prepare carries an already-failed
        done; the flush skips it and delivers the rest."""
        _requester, nic, qps, regions = _make_fanout(fabric)
        bad_region = qps[0].prepare_write("nope", 0, b"x")
        assert bad_region.done.failed
        assert isinstance(bad_region.done.exception, RdmaError)

        fresh_listener = RdmaListener(fabric.add_host("spare", cores=1))
        fresh_listener.export(MemoryRegion("data", 64))
        unconnected = QueuePair(nic, fresh_listener).prepare_write("data", 0, b"x")
        assert unconnected.done.failed

        good = qps[1].prepare_write("data", 0, b"ok")
        issued = nic.verbs_issued
        events = nic.post_many([bad_region, unconnected, good])
        sim.run()
        assert nic.verbs_issued == issued + 1  # only the live post
        assert events[2].ok
        assert regions[1].read(0, 2) == b"ok"

    def test_all_settled_batch_is_a_noop(self, sim, fabric):
        _requester, nic, qps, _regions = _make_fanout(fabric)
        bad = qps[0].prepare_write("nope", 0, b"x")
        issued = nic.verbs_issued
        nic.post_many([bad])
        sim.run()
        assert nic.verbs_issued == issued

    def test_dead_target_times_out_only_its_post(self, sim, fabric):
        """A crashed target fails its own post with RdmaTimeout; the
        other posts in the same doorbell complete normally."""
        _requester, nic, qps, regions = _make_fanout(fabric)
        posts = [qp.prepare_write("data", 0, b"payload") for qp in qps]
        qps[1].listener.host.crash()
        nic.post_many(posts)
        sim.run()
        assert posts[0].done.ok and posts[2].done.ok
        assert posts[1].done.failed
        assert isinstance(posts[1].done.exception, RdmaTimeout)
        assert regions[0].read(0, 7) == b"payload"

    def test_doorbell_counters(self, fabric):
        with collecting() as registry:
            sim = Simulator()
            fabric2 = Fabric(sim)
            _req, nic, qps, _regions = _make_fanout(fabric2)
            nic.post_many([qp.prepare_write("data", 0, b"x" * 32) for qp in qps])
            sim.run()
        assert registry.value("rdma.doorbells") == 1
        assert registry.value("rdma.doorbell_posts") == 3
        assert registry.value("rdma.verbs", type="write") == 3


class TestDoorbellQueue:
    def test_ring_flushes_accumulated_posts(self, sim, fabric):
        _requester, nic, qps, regions = _make_fanout(fabric)
        queue = DoorbellQueue(nic)
        for qp in qps:
            queue.post(qp.prepare_write("data", 8, b"fanout"))
        assert len(queue) == 3
        events = queue.ring()
        assert len(queue) == 0
        sim.run()
        assert all(event.ok for event in events)
        assert all(region.read(8, 6) == b"fanout" for region in regions)

    def test_auto_ring_at_max_posts(self, fabric):
        with collecting() as registry:
            sim = Simulator()
            fabric2 = Fabric(sim)
            _req, nic, qps, _regions = _make_fanout(fabric2, n_targets=1)
            queue = DoorbellQueue(nic, max_posts=2)
            for offset in (0, 16, 32):
                queue.post(qps[0].prepare_write("data", offset, b"x"))
            assert len(queue) == 1  # first two auto-flushed
            queue.ring()
            sim.run()
        assert registry.value("rdma.doorbells") == 2

    def test_empty_ring_is_free(self, sim, fabric):
        _requester, nic, _qps, _regions = _make_fanout(fabric)
        issued = nic.verbs_issued
        assert DoorbellQueue(nic).ring() == []
        assert nic.verbs_issued == issued

    def test_max_posts_validated(self, fabric):
        _requester, nic, _qps, _regions = _make_fanout(fabric)
        with pytest.raises(ValueError):
            DoorbellQueue(nic, max_posts=0)
