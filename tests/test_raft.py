"""Tests for the Raft-R baseline (§6.3.1)."""


from repro.baselines.raft import RaftCluster, RaftConfig
from repro.kv.client import KvClient
from repro.net import Fabric, PartitionController
from repro.sim import MS, SEC, Simulator


def make_cluster(f=1, **overrides):
    sim = Simulator()
    fabric = Fabric(sim)
    config = RaftConfig(f=f, **overrides)
    cluster = RaftCluster(fabric, config)
    cluster.start()
    client = KvClient(fabric.add_host("client", cores=4), fabric, cluster)
    return sim, fabric, cluster, client


def run(sim, gen, until=60 * SEC):
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled, "scenario did not finish"
    if process.failed:
        raise process.exception
    return process.value


class TestElection:
    def test_single_leader_elected(self):
        sim, _f, cluster, _client = make_cluster()
        sim.run(until=500 * MS)
        leaders = [n for n in cluster.nodes if n.role == "leader"]
        assert len(leaders) == 1

    def test_reelection_after_leader_crash(self):
        sim, _f, cluster, _client = make_cluster()
        sim.run(until=500 * MS)
        first = cluster.leader()
        first.crash()
        sim.run(until=sim.now + 1 * SEC)
        second = cluster.leader()
        assert second is not None and second is not first
        assert second.term > first.term

    def test_five_node_cluster(self):
        sim, _f, cluster, _client = make_cluster(f=2)
        sim.run(until=1 * SEC)
        assert sum(1 for n in cluster.nodes if n.role == "leader") == 1


class TestReplication:
    def test_put_get(self):
        sim, _f, cluster, client = make_cluster()

        def scenario():
            yield from cluster.wait_until_serving(timeout_us=2 * SEC)
            yield from client.put(b"k", b"v")
            return (yield from client.get(b"k"))

        assert run(sim, scenario()) == b"v"

    def test_writes_replicated_to_followers(self):
        sim, _f, cluster, client = make_cluster()

        def scenario():
            yield from cluster.wait_until_serving(timeout_us=2 * SEC)
            for index in range(20):
                yield from client.put(b"k%d" % index, b"v%d" % index)
            yield sim.timeout(20 * MS)  # let followers apply
            return [node.stats["applied"] for node in cluster.nodes]

        applied = run(sim, scenario())
        # 20 puts plus the leader's election no-op entry.
        assert all(count >= 20 for count in applied)

    def test_delete(self):
        sim, _f, cluster, client = make_cluster()

        def scenario():
            yield from cluster.wait_until_serving(timeout_us=2 * SEC)
            yield from client.put(b"k", b"v")
            yield from client.delete(b"k")
            return (yield from client.get(b"k"))

        assert run(sim, scenario()) is None

    def test_data_survives_leader_crash(self):
        sim, _f, cluster, client = make_cluster()

        def scenario():
            yield from cluster.wait_until_serving(timeout_us=2 * SEC)
            for index in range(30):
                yield from client.put(b"k%02d" % index, b"v%02d" % index)
            cluster.crash_leader()
            return (yield from client.get(b"k17"))

        assert run(sim, scenario()) == b"v17"

    def test_logs_stay_consistent(self):
        sim, _f, cluster, client = make_cluster()

        def scenario():
            yield from cluster.wait_until_serving(timeout_us=2 * SEC)
            for index in range(50):
                yield from client.put(b"k%d" % (index % 7), b"v%d" % index)
            yield sim.timeout(20 * MS)
            logs = [[entry.op for entry in node.log] for node in cluster.nodes]
            return logs

        logs = run(sim, scenario())
        assert logs[0] == logs[1] == logs[2]

    def test_preload(self):
        sim, _f, cluster, client = make_cluster()
        cluster.preload([(b"a", b"1"), (b"b", b"2")])

        def scenario():
            yield from cluster.wait_until_serving(timeout_us=2 * SEC)
            return (yield from client.get(b"b"))

        assert run(sim, scenario()) == b"2"


class TestSafety:
    def test_partitioned_leader_steps_down_on_new_term(self):
        sim, fabric, cluster, client = make_cluster()

        def scenario():
            leader = yield from cluster.wait_until_serving(timeout_us=2 * SEC)
            yield from client.put(b"k", b"before")
            controller = PartitionController(fabric)
            controller.isolate(leader.host.name)
            yield sim.timeout(1 * SEC)
            others = [n for n in cluster.nodes if n is not leader]
            new_leader = next((n for n in others if n.role == "leader"), None)
            assert new_leader is not None, "no new leader elected"
            # Heal; the old leader must observe the higher term and yield.
            controller.heal()
            yield sim.timeout(200 * MS)
            leaders = [n for n in cluster.nodes if n.role == "leader"]
            assert len(leaders) == 1
            value = yield from client.get(b"k")
            return value

        assert run(sim, scenario()) == b"before"

    def test_no_commit_without_quorum(self):
        sim, fabric, cluster, client = make_cluster()

        def scenario():
            leader = yield from cluster.wait_until_serving(timeout_us=2 * SEC)
            for node in cluster.nodes:
                if node is not leader:
                    node.crash()
            before = leader.commit_index  # the election no-op is committed
            try:
                yield from KvClient(
                    fabric.add_host("c2", cores=2), fabric, cluster,
                    max_rounds=5, retry_backoff_us=2 * MS,
                ).put(b"k", b"must-not-commit")
            except Exception:
                return leader.commit_index - before
            return -1

        advanced = run(sim, scenario())
        assert advanced == 0  # nothing committed without a majority
