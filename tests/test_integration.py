"""Full-stack integration scenarios crossing several subsystems."""


from repro.core.replicated_memory import NodeState
from repro.kv import KvClient
from repro.sim import MS, SEC
from repro.testing import make_kv_stack as make_stack
from repro.testing import run_scenario as run


class TestCombinedFailures:
    def test_memory_node_then_coordinator_failure(self):
        sim, _f, group, client = make_stack()

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            for index in range(40):
                yield from client.put(b"k%02d" % index, b"v%02d" % index)
            group.crash_memory_node(0)
            yield from client.put(b"after-mem-crash", b"yes")
            yield sim.timeout(5 * MS)
            group.crash_coordinator()
            value_a = yield from client.get(b"k33")
            value_b = yield from client.get(b"after-mem-crash")
            return value_a, value_b

        assert run(sim, scenario()) == (b"v33", b"yes")

    def test_coordinator_crash_during_memnode_recovery(self):
        """The successor must re-run the node recovery from scratch."""
        sim, _f, group, client = make_stack()

        def scenario():
            coordinator = yield from group.wait_until_serving(timeout_us=2 * SEC)
            for index in range(30):
                yield from client.put(b"k%02d" % index, b"v")
            group.crash_memory_node(2)
            yield from client.put(b"detect", b"x")
            yield sim.timeout(5 * MS)
            group.restart_memory_node(2)
            # Kill the coordinator while (or right before) it re-copies.
            yield sim.timeout(35 * MS)
            group.crash_coordinator()
            successor = yield from group.wait_until_serving(timeout_us=5 * SEC)
            deadline = sim.now + 60 * SEC
            while successor.repmem.states[2] != NodeState.LIVE and sim.now < deadline:
                yield sim.timeout(20 * MS)
            assert successor.repmem.states[2] == NodeState.LIVE
            return (yield from client.get(b"k07"))

        assert run(sim, scenario(), until=180 * SEC) == b"v"

    def test_ec_stack_with_rolling_memory_failures(self):
        sim, _f, group, client = make_stack(ec=True)

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            for index in range(30):
                yield from client.put(b"k%02d" % index, b"value-%02d" % index)
            for victim in (0, 1):
                group.crash_memory_node(victim)
                yield from client.put(b"probe-%d" % victim, b"x")
                yield sim.timeout(5 * MS)
                group.restart_memory_node(victim)
                coordinator = group.serving_coordinator()
                deadline = sim.now + 60 * SEC
                while (
                    coordinator.repmem.states[victim] != NodeState.LIVE
                    and sim.now < deadline
                ):
                    yield sim.timeout(20 * MS)
                assert coordinator.repmem.states[victim] == NodeState.LIVE
            return (yield from client.get(b"k15"))

        assert run(sim, scenario(), until=240 * SEC) == b"value-15"

    def test_load_during_failover_loses_no_acked_write(self):
        """Writes acknowledged before the crash must all survive it."""
        sim, fabric, group, client = make_stack()
        acked = {}

        def writer(tag):
            my_client = KvClient(fabric.add_host(f"w{tag}", cores=2), fabric, group)
            for round_number in range(30):
                key = b"w%d-%02d" % (tag, round_number)
                try:
                    yield from my_client.put(key, b"ok")
                    acked[key] = True
                except Exception:
                    pass  # unacked: no promise

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            workers = [sim.spawn(writer(tag)) for tag in range(4)]
            yield sim.timeout(20 * MS)
            group.crash_coordinator()
            for worker in workers:
                yield worker
            missing = []
            for key in acked:
                value = yield from client.get(key)
                if value != b"ok":
                    missing.append(key)
            return missing

        missing = run(sim, scenario())
        assert missing == [], f"acked writes lost: {missing}"

    def test_double_memory_failure_with_fm2(self):
        sim, _f, group, client = make_stack(fm=2)

        def scenario():
            yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from client.put(b"k", b"v")
            group.crash_memory_node(0)
            group.crash_memory_node(3)
            value = yield from client.get(b"k")
            yield from client.put(b"k2", b"v2")
            return value, (yield from client.get(b"k2"))

        assert run(sim, scenario()) == (b"v", b"v2")
