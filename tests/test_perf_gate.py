"""The perf-regression gate: floors, violations and the --gate exit code.

``run_perfbench`` is monkeypatched to return canned results so these
tests exercise the gate logic (floor loading, dotted-path lookup,
violation reporting, exit codes) without paying for real wall-clock
measurement — the acceptance check that a synthetic regression fails
the lane is the raised-floor case below.
"""

import json

import pytest

from repro.bench import perfbench
from repro.bench.perfbench import check_floors, load_floors

CANNED_RESULTS = {
    "engine": {
        "heap_churn": {"speedup": 2.1, "fast_events_per_s": 900_000.0},
        "cascade": {"speedup": 2.4, "fast_events_per_s": 1_800_000.0},
        "timer_churn": {"speedup": 3.5, "fast_events_per_s": 600_000.0},
        "wheel_churn": {"speedup": 1.26, "fast_events_per_s": 210_000.0},
    },
    "rdma_loopback": {"verbs": 4000, "wall_s": 0.1, "verbs_per_s": 40_000.0},
    "fig5_smoke": {
        "fast_driver_ops_per_s": 8_000.0,
        "speedup": 1.1,
    },
    "coalesced_fig5": {
        "simulated_speedup": 1.27,
        "driven_speedup": 1.5,
    },
    "openloop_generator": {
        "generation_speedup": 16.0,
        "vector_arrivals_per_s": 6_500_000.0,
        "columns_identical": True,
    },
    "parallel_sweep": {"scaling": 1.0},
}


class TestCheckFloors:
    def test_all_floors_held(self):
        assert check_floors(CANNED_RESULTS, {
            "engine.heap_churn.speedup": 1.5,
            "coalesced_fig5.driven_speedup": 1.2,
        }) == []

    def test_violation_reports_value_and_floor(self):
        violations = check_floors(CANNED_RESULTS, {
            "engine.heap_churn.speedup": 99.0,
        })
        assert violations == ["engine.heap_churn.speedup: 2.10 < floor 99.00"]

    def test_missing_metric_is_a_violation(self):
        """A renamed or dropped scenario must not silently pass."""
        violations = check_floors(CANNED_RESULTS, {
            "engine.renamed_scenario.speedup": 1.0,
            "fig5_smoke.speedup.deeper": 1.0,
        })
        assert len(violations) == 2
        assert all("missing" in v for v in violations)

    def test_exact_floor_passes(self):
        assert check_floors(CANNED_RESULTS, {"parallel_sweep.scaling": 1.0}) == []

    def test_violations_sorted_by_path(self):
        violations = check_floors(CANNED_RESULTS, {
            "fig5_smoke.speedup": 9.0,
            "engine.cascade.speedup": 9.0,
        })
        assert [v.split(":")[0] for v in violations] == [
            "engine.cascade.speedup", "fig5_smoke.speedup",
        ]


class TestLoadFloors:
    def test_committed_floors_file_loads(self):
        """The file CI gates on must parse and cover the tentpole
        scenarios."""
        floors = load_floors()
        assert floors["engine.heap_churn.speedup"] >= 1.5
        assert "engine.wheel_churn.speedup" in floors
        assert "coalesced_fig5.driven_speedup" in floors
        assert all(isinstance(v, float) for v in floors.values())

    def test_committed_floors_hold_on_canned_measurements(self):
        """Floors must sit at or below the measured values recorded in
        the floors file itself (CANNED_RESULTS mirrors the low end of
        those measurements)."""
        assert check_floors(CANNED_RESULTS, load_floors()) == []

    def test_override_path(self, tmp_path):
        path = tmp_path / "floors.json"
        path.write_text(json.dumps({"floors": {"a.b": 2}}))
        assert load_floors(path) == {"a.b": 2.0}


class TestGateExitCodes:
    @pytest.fixture
    def canned_perfbench(self, monkeypatch):
        calls = {}

        def fake_run_perfbench(events, rdma_verbs, repeat, **_kwargs):
            calls.update(events=events, rdma_verbs=rdma_verbs, repeat=repeat)
            return json.loads(json.dumps(CANNED_RESULTS))

        monkeypatch.setattr(perfbench, "run_perfbench", fake_run_perfbench)
        return calls

    def _floors_file(self, tmp_path, floors):
        path = tmp_path / "floors.json"
        path.write_text(json.dumps({"floors": floors}))
        return str(path)

    def test_gate_passes_on_healthy_ratios(self, canned_perfbench, tmp_path, capsys):
        rc = perfbench.main([
            "--quick", "--gate", "--out-dir", str(tmp_path / "out"),
            "--floors", self._floors_file(
                tmp_path, {"engine.heap_churn.speedup": 1.5}),
        ])
        assert rc == 0
        assert "PERF-GATE OK" in capsys.readouterr().err

    def test_gate_fails_on_synthetic_regression(
        self, canned_perfbench, tmp_path, capsys
    ):
        """Raising a floor above the measured ratio simulates an engine
        regression; the gate must exit non-zero and name the metric."""
        rc = perfbench.main([
            "--quick", "--gate", "--out-dir", str(tmp_path / "out"),
            "--floors", self._floors_file(
                tmp_path, {"engine.heap_churn.speedup": 50.0,
                           "coalesced_fig5.driven_speedup": 1.2}),
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "PERF-GATE FAIL engine.heap_churn.speedup" in err
        # Only the regressed metric is reported.
        assert "driven_speedup" not in err.split("PERF-GATE", 1)[1]

    def test_gate_forces_multiple_repetitions(self, canned_perfbench, tmp_path):
        """--quick alone measures best-of-1; under --gate a single noisy
        repetition must not be able to fail the lane."""
        perfbench.main([
            "--quick", "--gate", "--out-dir", str(tmp_path / "out"),
            "--floors", self._floors_file(tmp_path, {}),
        ])
        assert canned_perfbench["repeat"] >= 2
        assert canned_perfbench["events"] <= 50_000

    def test_no_gate_ignores_floors(self, canned_perfbench, tmp_path):
        """Without --gate the harness never reads a floors file and
        always exits zero (the pre-gate behaviour)."""
        rc = perfbench.main([
            "--quick", "--out-dir", str(tmp_path / "out"),
            "--floors", str(tmp_path / "does-not-exist.json"),
        ])
        assert rc == 0
        assert canned_perfbench["repeat"] == 1
