"""The parallel point executor must not change any number.

``run_points`` isolates every point in a fresh registry and merges the
dumps back in declared order, so a figure's registry snapshot — and
with it the whole ``BENCH_*.json`` artifact — is byte-identical whether
the points ran serially or across worker processes.  These tests pin
that contract with cheap synthetic points (the real figure drivers are
exercised against the committed baselines by CI's bench-smoke job at
``--jobs 1`` and ``--jobs 2``).
"""

import pytest

from repro.bench.parallel import Point, run_points
from repro.obs.registry import MetricsRegistry, collecting, current_registry


# Top-level so it pickles for the worker-process path.
def emit_point(name: str, value: float) -> dict:
    registry = current_registry()
    registry.counter("pt.calls").inc()
    registry.counter("pt.total").inc(value)
    registry.gauge("pt.last").set(value)
    registry.histogram("pt.samples", point=name).observe(value)
    registry.histogram("pt.all").observe(value)
    return {"name": name, "value": value}


def boom_point() -> dict:
    raise RuntimeError("point exploded")


def _points():
    return [
        Point(f"p{i}", emit_point, {"name": f"p{i}", "value": float(v)})
        for i, v in enumerate((3, 1, 4, 1, 5))
    ]


def _snapshot(jobs: int):
    registry = MetricsRegistry()
    with collecting(registry):
        values = run_points(_points(), jobs=jobs)
    return values, registry.snapshot()


class TestRunPoints:
    def test_serial_merges_in_declared_order(self):
        values, snap = _snapshot(jobs=1)
        assert values["p2"] == {"name": "p2", "value": 4.0}
        assert snap["counters"]["pt.calls"] == 5.0
        assert snap["counters"]["pt.total"] == 14.0
        # Gauges are last-write-wins in declared order: the final point.
        assert snap["gauges"]["pt.last"] == 5.0
        assert snap["histograms"]["pt.all"]["count"] == 5.0
        assert snap["histograms"]["pt.samples{point=p0}"]["p50"] == 3.0

    def test_parallel_snapshot_identical_to_serial(self):
        values_1, snap_1 = _snapshot(jobs=1)
        values_2, snap_2 = _snapshot(jobs=2)
        assert values_1 == values_2
        assert snap_1 == snap_2

    def test_duplicate_keys_rejected(self):
        points = [Point("same", emit_point, {"name": "a", "value": 1.0})] * 2
        with pytest.raises(ValueError, match="duplicate"):
            run_points(points)

    def test_runs_without_ambient_registry(self):
        # Each point still gets its own registry; dumps are discarded.
        assert current_registry() is None
        values = run_points(_points()[:2], jobs=1)
        assert values == {
            "p0": {"name": "p0", "value": 3.0},
            "p1": {"name": "p1", "value": 1.0},
        }

    def test_point_exception_propagates(self):
        with pytest.raises(RuntimeError, match="point exploded"):
            run_points([Point("bad", boom_point, {})], jobs=1)


class TestMergeDump:
    def test_counters_add_and_histograms_concatenate(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2.0)
        b.counter("c").inc(3.0)
        b.counter("only_b").inc(1.0)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(2.0)
        merged = MetricsRegistry()
        merged.merge_dump(a.dump())
        merged.merge_dump(b.dump())
        assert merged.value("c") == 5.0
        assert merged.value("only_b") == 1.0
        assert merged.histogram("h").samples == [1.0, 2.0]

    def test_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        merged = MetricsRegistry()
        merged.merge_dump(a.dump())
        merged.merge_dump(b.dump())
        assert merged.value("g") == 2.0

    def test_merged_snapshot_matches_single_registry(self):
        """Merging dumps reproduces a shared registry fed in order —
        including float-addition order inside histogram sums."""
        single = MetricsRegistry()
        parts = []
        for value in (0.1, 0.2, 0.3):
            part = MetricsRegistry()
            for registry in (single, part):
                registry.counter("n").inc()
                registry.histogram("h").observe(value)
            parts.append(part)
        merged = MetricsRegistry()
        for part in parts:
            merged.merge_dump(part.dump())
        assert merged.snapshot() == single.snapshot()
