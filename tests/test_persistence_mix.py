"""Mixed volatile/persistent memory-node deployments (§3.5)."""


from repro.core import SiftConfig, SiftGroup
from repro.core.membership import RESERVED_BYTES
from repro.net import Fabric
from repro.sim import MS, SEC, Simulator

BASE = RESERVED_BYTES


def make_group(persistent_nodes=(), **overrides):
    sim = Simulator()
    fabric = Fabric(sim)
    defaults = dict(
        fm=1, fc=1, data_bytes=64 * 1024, wal_entries=64,
        memnode_poll_interval_us=20 * MS,
    )
    defaults.update(overrides)
    group = SiftGroup(
        fabric, SiftConfig(**defaults), name="mix", persistent_nodes=persistent_nodes
    )
    group.start()
    return sim, fabric, group


def run(sim, gen, until=60 * SEC):
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled
    if process.failed:
        raise process.exception
    return process.value


def full_power_cycle(group):
    """Crash every node in the group, then restart everything."""
    for cpu_node in group.cpu_nodes:
        cpu_node.crash()
    for node in group.memory_nodes:
        node.crash()
    for node in group.memory_nodes:
        node.restart()
    for cpu_node in group.cpu_nodes:
        cpu_node.restart()


class TestMixedDeployments:
    def test_persistent_flag_applied_per_node(self):
        _sim, _f, group = make_group(persistent_nodes=(0, 1))
        assert group.memory_nodes[0].config.persistent
        assert group.memory_nodes[1].config.persistent
        assert not group.memory_nodes[2].config.persistent

    def test_majority_persistent_survives_full_power_cycle(self):
        """With a quorum of persistent nodes, the group loses nothing."""
        sim, _f, group = make_group(persistent_nodes=(0, 1))

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.write(BASE, b"survives-power-loss")
            # Let applies drain so the persistent regions hold the data.
            while coord.repmem.applied_floor() < coord.repmem.next_index - 1:
                yield sim.timeout(1 * MS)
            full_power_cycle(group)
            successor = yield from group.wait_until_serving(timeout_us=5 * SEC)
            return (yield from successor.repmem.read(BASE, 19))

        assert run(sim, scenario()) == b"survives-power-loss"

    def test_all_volatile_full_power_cycle_loses_data(self):
        """The paper's default: no persistence => a cold group bootstraps."""
        sim, _f, group = make_group(persistent_nodes=())

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.write(BASE, b"gone-after-power-loss")
            full_power_cycle(group)
            successor = yield from group.wait_until_serving(timeout_us=5 * SEC)
            data = yield from successor.repmem.read(BASE, 21)
            return data, successor.repmem.membership.epoch

        data, _epoch = run(sim, scenario())
        assert data == bytes(21)  # fresh bootstrap: zeroed memory

    def test_minority_persistent_cannot_serve_alone(self):
        """One persistent node of three is not a quorum after power loss:
        the group must refuse to serve rather than lose consistency."""
        sim, _f, group = make_group(persistent_nodes=(0,))

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.write(BASE, b"tunable-loss")
            full_power_cycle(group)
            # Bootstrap happens (the two volatile nodes are blank, the
            # persistent one is outvoted by the fresh bootstrap rules) or
            # the old data returns — but the group must never serve a
            # torn mixture.  With one trusted node the recovery path
            # treats the volatile majority as a fresh group only if no
            # trusted state exists; here node 0 IS trusted, so its
            # membership view wins and the volatile nodes are re-copied.
            successor = yield from group.wait_until_serving(timeout_us=10 * SEC)
            data = yield from successor.repmem.read(BASE, 12)
            return data

        data = run(sim, scenario(), until=120 * SEC)
        assert data in (b"tunable-loss", bytes(12))

    def test_volatile_node_recopied_after_cycle(self):
        sim, _f, group = make_group(persistent_nodes=(0, 1))

        def scenario():
            coord = yield from group.wait_until_serving(timeout_us=2 * SEC)
            yield from coord.repmem.write(BASE, b"data")
            while coord.repmem.applied_floor() < coord.repmem.next_index - 1:
                yield sim.timeout(1 * MS)
            full_power_cycle(group)
            successor = yield from group.wait_until_serving(timeout_us=5 * SEC)
            rm = successor.repmem
            deadline = sim.now + 60 * SEC
            while rm.states[2] != "live" and sim.now < deadline:
                yield sim.timeout(20 * MS)
            assert rm.states[2] == "live"
            offset = rm.amap.raw_extent(BASE)
            return group.memory_nodes[2].repmem_region.read(offset, 4)

        assert run(sim, scenario(), until=120 * SEC) == b"data"
