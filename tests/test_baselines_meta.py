"""Tests for the protocol-characteristics data (Table 1 source)."""

import pytest

from repro.baselines import PROTOCOL_CHARACTERISTICS, characteristics_table
from repro.baselines.characteristics import replication_factor
from repro.baselines.epaxos import EPaxosConfig
from repro.baselines.raft import RaftConfig
from repro.core import SiftConfig


class TestTable1Data:
    def test_five_protocols_listed(self):
        names = [row["type"] for row in PROTOCOL_CHARACTERISTICS]
        assert names == ["Sift", "Raft", "DARE", "RS-Paxos", "Disk Paxos"]

    def test_sift_row(self):
        sift = PROTOCOL_CHARACTERISTICS[0]
        assert sift["resource_location"] == "Disaggregated"
        assert sift["protocol"] == "1-sided RDMA"
        assert sift["erasure_coding"] == "Yes"
        assert "2Fm + 1" in sift["replication_factor"]

    def test_rendered_table_contains_all_rows(self):
        table = characteristics_table()
        for row in PROTOCOL_CHARACTERISTICS:
            assert row["type"] in table

    def test_replication_factors_match_implementations(self):
        for f in (1, 2, 3):
            sift = SiftConfig(fm=f, fc=f)
            assert replication_factor("sift", f) == {
                "memory_nodes": sift.memory_node_count,
                "cpu_nodes": sift.cpu_node_count,
            }
            assert replication_factor("raft", f)["nodes"] == RaftConfig(f=f).nodes
            assert replication_factor("epaxos", f)["nodes"] == EPaxosConfig(f=f).nodes

    def test_epaxos_quorum_sizes(self):
        """EPaxos fast quorum F + floor((F+1)/2), including the leader."""
        assert EPaxosConfig(f=1).fast_quorum == 2
        assert EPaxosConfig(f=2).fast_quorum == 3
        assert EPaxosConfig(f=1).slow_quorum == 2

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            replication_factor("zab", 1)
