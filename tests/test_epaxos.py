"""Tests for the EPaxos baseline (§6.3)."""


from repro.baselines.epaxos import EPaxosCluster, EPaxosConfig
from repro.kv.client import KvClient
from repro.net import Fabric
from repro.sim import MS, SEC, Simulator


def make_cluster(f=1, **overrides):
    sim = Simulator()
    fabric = Fabric(sim)
    cluster = EPaxosCluster(fabric, EPaxosConfig(f=f, **overrides))
    cluster.start()
    return sim, fabric, cluster


def client_for(fabric, cluster, name="client", preferred=None):
    client = KvClient(fabric.add_host(name, cores=4), fabric, cluster)
    if preferred is not None:
        client._preferred = preferred
    return client


def run(sim, gen, until=30 * SEC):
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled, "scenario did not finish"
    if process.failed:
        raise process.exception
    return process.value


class TestDataPath:
    def test_put_get_via_one_replica(self):
        sim, fabric, cluster = make_cluster()
        client = client_for(fabric, cluster)

        def scenario():
            yield from client.put(b"k", b"v")
            return (yield from client.get(b"k"))

        assert run(sim, scenario()) == b"v"

    def test_every_replica_serves(self):
        """Leaderless: all replicas handle client requests (§2.1)."""
        sim, fabric, cluster = make_cluster()
        clients = [
            client_for(fabric, cluster, f"c{i}", preferred=i) for i in range(3)
        ]

        def scenario():
            for index, client in enumerate(clients):
                yield from client.put(b"key-%d" % index, b"from-%d" % index)
            yield sim.timeout(5 * MS)  # commit announcements propagate
            values = []
            for index in range(3):
                values.append((yield from clients[(index + 1) % 3].get(b"key-%d" % index)))
            return values

        values = run(sim, scenario())
        assert values == [b"from-0", b"from-1", b"from-2"]
        assert all(replica.stats["ops"] > 0 for replica in cluster.replicas)

    def test_cross_replica_visibility(self):
        sim, fabric, cluster = make_cluster()
        writer = client_for(fabric, cluster, "w", preferred=0)
        reader = client_for(fabric, cluster, "r", preferred=2)

        def scenario():
            yield from writer.put(b"shared", b"value")
            yield sim.timeout(5 * MS)
            return (yield from reader.get(b"shared"))

        assert run(sim, scenario()) == b"value"

    def test_delete(self):
        sim, fabric, cluster = make_cluster()
        client = client_for(fabric, cluster)

        def scenario():
            yield from client.put(b"k", b"v")
            yield from client.delete(b"k")
            yield sim.timeout(5 * MS)
            return (yield from client.get(b"k"))

        assert run(sim, scenario()) is None

    def test_reads_cost_a_network_round(self):
        """§6.3.2: reads require network operations (no local fast path)."""
        sim, fabric, cluster = make_cluster()
        client = client_for(fabric, cluster)

        def scenario():
            yield from client.put(b"k", b"v")
            start = sim.now
            yield from client.get(b"k")
            return sim.now - start

        elapsed = run(sim, scenario())
        # RPC (~50us) + batching window (~100us) + consensus round.
        assert elapsed > 100.0


class TestBatching:
    def test_batch_window_flushes(self):
        sim, fabric, cluster = make_cluster(batch_window_us=100.0, batch_max=100)
        client = client_for(fabric, cluster)

        def scenario():
            yield from client.put(b"a", b"1")
            return cluster.replicas[0].stats["batches"]

        batches = run(sim, scenario())
        assert batches == 1

    def test_many_ops_share_batches(self):
        sim, fabric, cluster = make_cluster()
        clients = [client_for(fabric, cluster, f"c{i}", preferred=0) for i in range(10)]

        def scenario():
            procs = []
            for index, client in enumerate(clients):
                procs.append(
                    fabric.host(f"c{index}").spawn(client.put(b"k%d" % index, b"v"))
                )
            for proc in procs:
                yield proc
            replica = cluster.replicas[0]
            return replica.stats["ops"], replica.stats["batches"]

        ops, batches = run(sim, scenario())
        assert ops == 10
        assert batches < ops  # batching amortised consensus rounds

    def test_full_batch_flushes_early(self):
        sim, fabric, cluster = make_cluster(batch_window_us=1_000_000.0, batch_max=4)
        clients = [client_for(fabric, cluster, f"c{i}", preferred=0) for i in range(4)]

        def scenario():
            procs = [
                fabric.host(f"c{i}").spawn(clients[i].put(b"k%d" % i, b"v"))
                for i in range(4)
            ]
            for proc in procs:
                yield proc
            return sim.now

        elapsed = run(sim, scenario())
        assert elapsed < 10_000  # did not wait for the 1s window


class TestConflicts:
    def test_conflicting_keys_trigger_slow_path(self):
        sim, fabric, cluster = make_cluster(batch_window_us=5.0)
        a = client_for(fabric, cluster, "a", preferred=0)
        b = client_for(fabric, cluster, "b", preferred=1)

        def scenario():
            procs = []
            for round_number in range(20):
                procs.append(fabric.host("a").spawn(a.put(b"hot", b"A%d" % round_number)))
                procs.append(fabric.host("b").spawn(b.put(b"hot", b"B%d" % round_number)))
                yield sim.timeout(30.0)
            for proc in procs:
                yield proc
            return sum(replica.stats["slow_path"] for replica in cluster.replicas)

        slow = run(sim, scenario())
        assert slow > 0  # concurrent conflicting commands hit the slow path

    def test_disjoint_keys_stay_on_fast_path(self):
        sim, fabric, cluster = make_cluster()
        a = client_for(fabric, cluster, "a", preferred=0)

        def scenario():
            for round_number in range(10):
                yield from a.put(b"solo-%d" % round_number, b"v")
            replica = cluster.replicas[0]
            return replica.stats["fast_path"], replica.stats["slow_path"]

        fast, slow = run(sim, scenario())
        assert fast >= 10 and slow == 0
