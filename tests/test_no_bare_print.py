"""Local mirror of the CI lint: no bare ``print`` in library code.

Loads ``tools/check_no_print.py`` straight off disk (it is a script,
not a package) and asserts a clean scan, so a stray debugging print in
``src/repro/`` fails the tier-1 suite before it ever reaches CI.
"""

import importlib.util
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_checker():
    path = os.path.join(REPO_ROOT, "tools", "check_no_print.py")
    spec = importlib.util.spec_from_file_location("check_no_print", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_library_code_has_no_bare_prints():
    checker = _load_checker()
    violations = checker.scan(REPO_ROOT)
    assert violations == [], (
        "bare print() in library code (route through repro.obs or "
        "print(..., file=sys.stderr)): " + ", ".join(violations)
    )


def test_checker_flags_a_bare_print(tmp_path):
    # The lint itself must work: a synthetic tree with one bare print
    # and one stderr print yields exactly the bare one.
    pkg = tmp_path / "src" / "repro" / "demo"
    os.makedirs(pkg)
    (pkg / "bad.py").write_text(
        "import sys\n"
        "print('bare')\n"
        "print('fine', file=sys.stderr)\n"
    )
    checker = _load_checker()
    assert checker.scan(str(tmp_path)) == ["src/repro/demo/bad.py:2"]
