"""Unit tests for the membership word."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.membership import MEMBERSHIP_ADDR, RESERVED_BYTES, Membership


class TestMembership:
    def test_roundtrip(self):
        membership = Membership(7, frozenset({0, 2}))
        assert Membership.unpack(membership.pack(), total_nodes=3) == membership

    def test_zero_word_bootstraps_all_members(self):
        membership = Membership.unpack(bytes(8), total_nodes=5)
        assert membership == Membership(0, frozenset(range(5)))

    def test_with_member_bumps_epoch(self):
        membership = Membership(3, frozenset({0, 1}))
        joined = membership.with_member(2)
        assert joined.epoch == 4
        assert joined.members == frozenset({0, 1, 2})

    def test_without_member_bumps_epoch(self):
        membership = Membership(3, frozenset({0, 1, 2}))
        removed = membership.without_member(1)
        assert removed.epoch == 4
        assert removed.members == frozenset({0, 2})

    def test_member_index_range_checked(self):
        with pytest.raises(ValueError):
            Membership(1, frozenset({16})).pack()

    def test_empty_members_packs_nonzero(self):
        """Epoch >= 1 with no members must not collide with bootstrap zero."""
        membership = Membership(1, frozenset())
        assert int.from_bytes(membership.pack(), "little") != 0
        assert Membership.unpack(membership.pack(), 3) == membership

    def test_reserved_region_constants(self):
        assert MEMBERSHIP_ADDR == 0
        assert RESERVED_BYTES >= 8

    @given(
        epoch=st.integers(1, 2**32 - 1),
        members=st.frozensets(st.integers(0, 15), max_size=16),
    )
    def test_roundtrip_property(self, epoch, members):
        membership = Membership(epoch, members)
        assert Membership.unpack(membership.pack(), 16) == membership
