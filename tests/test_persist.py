"""Tests for the persistence layer (§3.5): RocksLite, sink, SAN."""

import os
import struct


from repro.core import SiftGroup
from repro.kv import KvClient, KvConfig, kv_app_factory
from repro.net import Fabric
from repro.persist import PersistenceSink, RocksLite, SanDevice
from repro.sim import MS, SEC, Simulator


class TestRocksLite:
    def test_put_get(self, tmp_path):
        store = RocksLite(str(tmp_path / "db"))
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        store.close()

    def test_delete(self, tmp_path):
        store = RocksLite(str(tmp_path / "db"))
        store.put(b"k", b"v")
        store.delete(b"k")
        assert store.get(b"k") is None
        store.close()

    def test_reopen_recovers_from_wal(self, tmp_path):
        path = str(tmp_path / "db")
        store = RocksLite(path)
        for index in range(100):
            store.put(b"k%d" % index, b"v%d" % index)
        store.delete(b"k50")
        store.close()
        reopened = RocksLite(path)
        assert reopened.get(b"k17") == b"v17"
        assert reopened.get(b"k50") is None
        assert len(reopened) == 99
        reopened.close()

    def test_checkpoint_then_recover(self, tmp_path):
        path = str(tmp_path / "db")
        store = RocksLite(path)
        for index in range(50):
            store.put(b"k%d" % index, b"v%d" % index)
        store.checkpoint()
        store.put(b"after", b"checkpoint")
        store.close()
        reopened = RocksLite(path)
        assert reopened.get(b"k42") == b"v42"
        assert reopened.get(b"after") == b"checkpoint"
        reopened.close()

    def test_checkpoint_truncates_wal(self, tmp_path):
        path = str(tmp_path / "db")
        store = RocksLite(path)
        for index in range(50):
            store.put(b"k%d" % index, b"x" * 100)
        store.checkpoint()
        store.close()
        assert os.path.getsize(os.path.join(path, "wal.log")) == 0

    def test_old_checkpoints_pruned(self, tmp_path):
        path = str(tmp_path / "db")
        store = RocksLite(path)
        store.put(b"a", b"1")
        store.checkpoint()
        store.put(b"b", b"2")
        store.checkpoint()
        store.close()
        snaps = [n for n in os.listdir(path) if n.endswith(".snap")]
        assert len(snaps) == 1

    def test_torn_wal_tail_ignored(self, tmp_path):
        path = str(tmp_path / "db")
        store = RocksLite(path)
        store.put(b"good", b"record")
        store.close()
        with open(os.path.join(path, "wal.log"), "ab") as wal:
            wal.write(struct.pack("<QBII", 99, 1, 4, 4) + b"to")  # truncated
        reopened = RocksLite(path)
        assert reopened.get(b"good") == b"record"
        assert reopened.get(b"torn") is None
        reopened.close()

    def test_corrupt_record_stops_replay(self, tmp_path):
        path = str(tmp_path / "db")
        store = RocksLite(path)
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        store.close()
        with open(os.path.join(path, "wal.log"), "r+b") as wal:
            wal.seek(10)
            wal.write(b"\xff")  # corrupt the first record
        reopened = RocksLite(path)
        assert reopened.get(b"a") is None  # replay stopped at corruption
        reopened.close()

    def test_sequence_numbers_monotonic_across_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        store = RocksLite(path)
        last = 0
        for index in range(10):
            last = store.put(b"k%d" % index, b"v")
        store.close()
        reopened = RocksLite(path)
        assert reopened.put(b"new", b"v") > last
        reopened.close()

    def test_items_iterates_live_pairs(self, tmp_path):
        store = RocksLite(str(tmp_path / "db"))
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        store.delete(b"a")
        assert dict(store.items()) == {b"b": b"2"}
        store.close()


class TestPersistenceSink:
    def test_kv_store_with_persistence(self, tmp_path):
        sim = Simulator()
        fabric = Fabric(sim)
        kv_config = KvConfig(max_keys=256, wal_entries=64, watermark_interval=16)
        stores = {}

        def persistence_factory(cpu_node):
            store = RocksLite(str(tmp_path / cpu_node.name))
            stores[cpu_node.name] = store
            return PersistenceSink(cpu_node.host, store, sync_us=10.0)

        group = SiftGroup(
            fabric,
            kv_config.sift_config(fm=1, fc=1, wal_entries=128),
            name="p",
            app_factory=kv_app_factory(kv_config, persistence_factory=persistence_factory),
        )
        group.start()
        client = KvClient(fabric.add_host("client", cores=2), fabric, group)

        def scenario():
            coordinator = yield from group.wait_until_serving(timeout_us=2 * SEC)
            for index in range(100):
                yield from client.put(b"k%02d" % index, b"v%02d" % index)
            yield from client.delete(b"k50")
            sink = coordinator.app.persistence
            while sink.backlog or coordinator.app.applied_seq < coordinator.app.next_seq - 1:
                yield sim.timeout(1 * MS)
            yield sim.timeout(5 * MS)
            return coordinator.name

        process = sim.spawn(scenario())
        sim.run_until_settled(process, deadline=60 * SEC)
        assert process.ok, process.exception
        store = stores[process.value]
        assert store.get(b"k17") == b"v17"
        assert store.get(b"k50") is None
        assert len(store) == 99

    def test_sink_backpressure_bounds_queue(self, tmp_path):
        sim = Simulator()
        fabric = Fabric(sim)
        host = fabric.add_host("h", cores=2)
        store = RocksLite(str(tmp_path / "db"))
        sink = PersistenceSink(host, store, capacity=8, batch_max=4, sync_us=500.0)
        sink.start()

        from repro.kv.layout import OP_PUT, WalRecord

        def producer():
            for seq in range(1, 101):
                yield from sink.offer(WalRecord(seq, OP_PUT, b"k%d" % seq, b"v", 1))
                assert sink.backlog <= 8
            return True

        process = sim.spawn(producer())
        sim.run_until_settled(process, deadline=10 * SEC)
        assert process.ok
        sim.run(until=sim.now + 100 * MS)
        assert sink.persisted == 100
        store.close()


class TestSanDevice:
    def test_append_and_ack(self):
        sim = Simulator()
        fabric = Fabric(sim)
        san = SanDevice(fabric)
        host = fabric.add_host("coordinator", cores=2)

        def scenario():
            offset = yield san.append(host, b"log-entry-1")
            offset2 = yield san.append(host, b"log-entry-2")
            return offset, offset2

        process = sim.spawn(scenario())
        sim.run_until_settled(process, deadline=10 * SEC)
        assert process.ok
        assert process.value == (11, 22)
        assert san.read_all() == b"log-entry-1log-entry-2"

    def test_latency_is_millisecond_class(self):
        sim = Simulator()
        fabric = Fabric(sim)
        san = SanDevice(fabric)
        host = fabric.add_host("coordinator", cores=2)

        def scenario():
            start = sim.now
            yield san.append(host, b"x" * 4096)
            return sim.now - start

        process = sim.spawn(scenario())
        sim.run_until_settled(process, deadline=10 * SEC)
        assert process.value > 500.0  # well above RDMA-class latency

    def test_unreachable_san_fails(self):
        sim = Simulator()
        fabric = Fabric(sim)
        san = SanDevice(fabric)
        host = fabric.add_host("coordinator", cores=2)
        san.host.crash()

        def scenario():
            try:
                yield san.append(host, b"x")
            except Exception:
                return "failed"

        process = sim.spawn(scenario())
        sim.run_until_settled(process, deadline=10 * SEC)
        assert process.value == "failed"
