"""Tests for SiftGroup wiring and configuration validation."""

import pytest

from repro.core import SiftConfig, SiftGroup
from repro.net import Fabric
from repro.sim import MS, SEC, Simulator


class TestConfigValidation:
    def test_defaults_valid(self):
        SiftConfig().validate()

    def test_geometry(self):
        config = SiftConfig(fm=2, fc=3)
        assert config.memory_node_count == 5
        assert config.cpu_node_count == 4
        assert config.quorum == 3
        assert config.data_shards == 3
        assert config.parity_shards == 2

    def test_negative_f_rejected(self):
        with pytest.raises(ValueError):
            SiftConfig(fm=-1).validate()

    def test_direct_window_must_fit(self):
        with pytest.raises(ValueError):
            SiftConfig(direct_bytes=2 * 1024 * 1024, data_bytes=1024 * 1024).validate()

    def test_direct_window_must_be_block_aligned(self):
        with pytest.raises(ValueError):
            SiftConfig(direct_bytes=1000, block_bytes=1024).validate()

    def test_wal_payload_must_fit_block(self):
        with pytest.raises(ValueError):
            SiftConfig(block_bytes=2048, wal_payload_bytes=1024).validate()

    def test_heartbeat_budget_checked(self):
        with pytest.raises(ValueError):
            SiftConfig(
                heartbeat_write_interval_us=50_000.0,
                heartbeat_read_interval_us=7_000.0,
            ).validate()

    def test_election_timeout_derivation(self):
        config = SiftConfig(heartbeat_read_interval_us=7_000.0, missed_heartbeats_allowed=3)
        assert config.election_timeout_us == 21_000.0

    def test_chunk_bytes_rounds_up(self):
        config = SiftConfig(fm=2, block_bytes=1040)
        assert config.chunk_bytes == 347  # ceil(1040 / 3)

    def test_memory_node_config_geometry(self):
        config = SiftConfig(fm=1, data_bytes=1 << 20, wal_entries=128)
        node_config = config.memory_node_config()
        assert node_config.wal_entries == 128
        assert node_config.data_bytes == config.node_data_bytes


class TestGroupWiring:
    def test_node_counts(self):
        sim = Simulator()
        fabric = Fabric(sim)
        group = SiftGroup(fabric, SiftConfig(fm=2, fc=1, data_bytes=64 * 1024, wal_entries=32))
        assert len(group.memory_nodes) == 5
        assert len(group.cpu_nodes) == 2

    def test_wait_until_serving_times_out_when_down(self):
        sim = Simulator()
        fabric = Fabric(sim)
        group = SiftGroup(fabric, SiftConfig(data_bytes=64 * 1024, wal_entries=32))

        def scenario():
            try:
                yield from group.wait_until_serving(timeout_us=50 * MS)
            except Exception as exc:
                return type(exc).__name__
            return "served"

        # never started
        process = sim.spawn(scenario())
        sim.run_until_settled(process, deadline=1 * SEC)
        assert process.value == "GroupUnavailable"

    def test_crash_coordinator_without_one_is_noop(self):
        sim = Simulator()
        fabric = Fabric(sim)
        group = SiftGroup(fabric, SiftConfig(data_bytes=64 * 1024, wal_entries=32))
        assert group.crash_coordinator() is None

    def test_memory_nodes_have_minimal_cores(self):
        """§3.1: memory nodes need minimal CPU (Table 2: one core)."""
        sim = Simulator()
        fabric = Fabric(sim)
        group = SiftGroup(fabric, SiftConfig(data_bytes=64 * 1024, wal_entries=32))
        assert all(node.host.cpu.cores == 1 for node in group.memory_nodes)
        assert all(node.host.cpu.cores >= 10 for node in group.cpu_nodes)
